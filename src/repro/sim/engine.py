"""Discrete-event simulation kernel.

A minimal but complete generator-coroutine DES kernel in the style of
SimPy, written from scratch for this reproduction so the whole system has
no dependencies beyond numpy/scipy.

Concepts
--------
``Simulator``
    Owns the event heap and the clock.  ``run()`` pops events in
    (time, priority, sequence) order and fires their callbacks.

``Event``
    A one-shot occurrence.  Processes ``yield`` events to wait on them.
    An event is *triggered* when scheduled and *processed* once its
    callbacks have run.  ``succeed(value)`` / ``fail(exc)`` resolve it.

``Timeout``
    An event that triggers after a fixed delay.

``Process``
    Wraps a generator **or a coroutine**.  Each ``yield`` (or ``await``)
    suspends the process until the yielded event fires; the event's
    value is sent back into the body (or its exception thrown in).  A
    ``Process`` is itself an event that triggers when the body returns,
    making process composition (``yield self.sim.process(child())`` /
    ``await self.sim.process(child())``) natural.  Both styles drive the
    exact same resume loop: an ``await``-authored process produces the
    identical ``(time, priority, seq)`` event stream as its
    ``yield``-authored twin (see :mod:`repro.sim.process` and
    ``python -m repro.sim --ab-process``).

``AnyOf`` / ``AllOf``
    Composite conditions over several events.

Fast path
---------
The hot loop of every figure sweep is ``run()`` popping millions of
events, most of which are one of two shapes:

* a bare timed callback (wire deliveries, bus completions, switch
  forwarding) — represented by a pooled, closure-free :class:`_Callback`
  heap entry created with :meth:`Simulator.call_after`, which never
  allocates an :class:`Event` at all;
* an anonymous ``yield sim.sleep(dt)`` inside a model process —
  represented by a free-list-pooled :class:`Timeout` that the run loop
  recycles once its callbacks have fired.

``run()`` inlines the per-event work (no ``step()`` call per event) and
``Timeout`` builds its display name lazily — the f-string only exists if
someone actually prints the event.

Determinism
-----------
Events scheduled for the same timestamp fire in (priority, insertion
order).  Nothing in the kernel consults a random source, so identical
inputs yield identical schedules — a property the test suite checks.
"""

from __future__ import annotations

import itertools
import os
import sys
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import Interrupt, ProcessError, SimTimeError
from .sched import make_scheduler

__all__ = [
    "Simulator",
    "SimulationRunaway",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "URGENT",
    "NORMAL",
    "set_trace_sink",
]

# Event priorities: URGENT events at a timestamp fire before NORMAL ones.
URGENT = 0
NORMAL = 1

_PENDING = object()  # sentinel: event value not yet set

#: bound on the kernel free lists (Timeout / _Callback recycling)
_POOL_MAX = 1024

#: default scheduler kind; overridable per-instance or via environment.
#: "native" is the compiled C heap when the optional extension is built,
#: and the pure-python calendar composite otherwise — identical pop
#: order either way (sched_stats()["compiled"] reports which ran).
_DEFAULT_SCHEDULER = "native"

#: module-level event-trace sink (A/B ordering harness).  When set, every
#: Simulator constructed afterwards appends ``(when, prio, seq, type)``
#: per dispatched event.  ``python -m repro.sim --ab`` uses this to diff
#: the heap scheduler against the calendar scheduler.
_TRACE_SINK: Optional[list] = None


def set_trace_sink(sink: Optional[list]) -> None:
    """Install (or clear) the event-trace sink for new Simulators."""
    global _TRACE_SINK
    _TRACE_SINK = sink


class SimulationRunaway(SimTimeError):
    """Raised when ``run(max_events=...)`` exceeds its event budget."""


class Event:
    """A one-shot occurrence that callbacks and processes can wait on."""

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_entry", "_name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self._name = name
        #: callables invoked with this event when it is processed; set to
        #: ``None`` afterwards so late additions fail loudly.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._scheduled = False
        #: scheduler entry while queued (enables O(1) ``cancel``)
        self._entry: Optional[list] = None

    # -- identity ---------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @name.setter
    def name(self, value: str) -> None:
        self._name = value

    # -- state ----------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) on the heap."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    # -- resolution -------------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Resolve the event successfully at the current simulation time."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined delay-0 ``Simulator._schedule`` (hot path: every store
        # handoff, request grant, and process completion lands here).
        if self._scheduled:
            raise RuntimeError(f"{self!r} is already scheduled")
        self._scheduled = True
        sim = self.sim
        self._entry = sim._push_now(sim._now, priority, next(sim._seq), self)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Resolve the event with an exception.

        Any process waiting on it will have the exception thrown in.
        """
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, priority)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when this event is processed.

        If the event has already been processed the callback runs
        immediately (same semantics as adding a done-callback to a
        resolved future).
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def cancel(self) -> bool:
        """Withdraw a scheduled-but-unprocessed event; see ``Simulator.cancel``."""
        return self.sim.cancel(self)

    def __await__(self):
        """Awaitable protocol: ``await event`` inside a coroutine process.

        Yields the event itself to the driving :class:`Process` — the
        same object a generator process would ``yield`` — so an
        ``await``-style body suspends, resumes, and orders its events
        identically to the generator style.  The value the process
        driver sends back becomes the value of the ``await`` expression.
        """
        return (yield self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation.

    The display name is built lazily — ``run()`` never pays for a name
    f-string that nothing prints.
    """

    __slots__ = ("delay", "_pooled")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimTimeError(f"negative timeout delay: {delay!r}")
        # Inlined Event.__init__ (this constructor is on the hot path).
        self.sim = sim
        self._name = None
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = False
        self._entry = None
        self.delay = delay
        self._pooled = False
        sim._schedule_timer(self, delay)

    @property
    def name(self) -> str:
        if self._name is None:
            return f"timeout({self.delay:g})"
        return self._name

    @name.setter
    def name(self, value: str) -> None:
        self._name = value


class _Callback:
    """A pooled, closure-free timed callback heap entry.

    Not an :class:`Event` — nothing can wait on it, which is exactly why
    the run loop can recycle it the moment it fires.  Created via
    :meth:`Simulator.call_after`.
    """

    __slots__ = ("fn", "args")

    def __init__(self) -> None:
        self.fn: Optional[Callable[..., None]] = None
        self.args: tuple = ()


def _run_group(calls: list) -> None:
    """Fire a :meth:`Simulator.call_group` batch (list order)."""
    for fn, args in calls:
        fn(*args)


class Initialize(Event):
    """Internal: kicks off a newly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim, name="init")
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        sim._schedule(self, URGENT)


class Process(Event):
    """A running simulated activity wrapping a generator or coroutine.

    The process is itself an :class:`Event` that triggers with the
    body's return value when it finishes (or fails with its uncaught
    exception).  Generators yield events; coroutines ``await`` them
    (via :meth:`Event.__await__`) — the driver below is shared, so the
    two styles are event-for-event identical.
    """

    __slots__ = ("_generator", "_target", "is_alive")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise ProcessError(
                f"process body must be a generator or coroutine, got {generator!r}"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        #: the event this process is currently waiting on (None if running)
        self._target: Optional[Event] = None
        self.is_alive = True
        Initialize(sim, self)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        The process may catch it and continue; the event it was waiting
        on stays pending and is simply no longer awaited by this process.
        """
        if not self.is_alive:
            raise ProcessError(f"cannot interrupt finished process {self.name!r}")
        if self._target is None:
            if self.sim._active_process is self:
                raise ProcessError(
                    f"process {self.name!r} cannot interrupt itself"
                )
            raise ProcessError(
                f"cannot interrupt process {self.name!r} before its first "
                f"suspension (it has not started yet)"
            )
        # Detach from the awaited event and resume with the interrupt at
        # the current time, ahead of same-time ordinary events.
        target, self._target = self._target, None
        if target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        wakeup = Event(self.sim, name="interrupt")
        wakeup.callbacks.append(self._resume)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        self.sim._schedule(wakeup, URGENT)

    # -- engine plumbing --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.sim._active_process = self
        try:
            while True:
                try:
                    if event._ok:
                        target = self._generator.send(event._value)
                    else:
                        target = self._generator.throw(event._value)
                except StopIteration as stop:
                    self.is_alive = False
                    self._target = None
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    self.is_alive = False
                    self._target = None
                    self.fail(exc)
                    return

                if not isinstance(target, Event):
                    exc = ProcessError(
                        f"process {self.name!r} yielded/awaited non-event "
                        f"{target!r}"
                    )
                    self.is_alive = False
                    self._target = None
                    self.fail(exc)
                    return
                if target.sim is not self.sim:
                    exc = ProcessError(
                        f"process {self.name!r} yielded event of another simulator"
                    )
                    self.is_alive = False
                    self._target = None
                    self.fail(exc)
                    return

                if target.callbacks is not None:
                    # Target still pending: subscribe and suspend.
                    target.callbacks.append(self._resume)
                    self._target = target
                    return
                # Target already processed: loop and continue immediately.
                event = target
        finally:
            self.sim._active_process = None


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name=type(self).__name__)
        self.events = tuple(events)
        self._n_fired = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise ProcessError("condition mixes events from different simulators")
            ev.add_callback(self._on_fire)
        if not self.events:
            # Vacuous conditions resolve immediately.
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        # ``processed`` (callbacks ran) rather than ``triggered``: a Timeout
        # carries its value from creation, but it hasn't *happened* until
        # the heap pops it.
        return {ev: ev._value for ev in self.events if ev.processed}

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._n_fired += 1
        if self._check():
            self.succeed(self._collect())

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when any constituent event triggers.

    Value is a dict of the events that had fired by then.
    """

    __slots__ = ()

    def _check(self) -> bool:
        return self._n_fired >= 1


class AllOf(_Condition):
    """Triggers when all constituent events have triggered."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._n_fired == len(self.events)


class Simulator:
    """The event loop: a clock plus a scheduler of pending events.

    ``scheduler`` picks the priority-queue implementation (see
    :mod:`repro.sim.sched`): ``"native"`` (default) is the compiled C
    heap (pure-python composite when the extension isn't built),
    ``"calendar"`` the calendar ring + timer wheel + now-queue
    composite, ``"heap"`` the reference binary heap.  Every scheduler
    honours the same unique ``(time, priority, seq)`` total order, so
    the choice never changes a schedule — only how fast it executes.
    The environment variable ``REPRO_SIM_SCHEDULER`` overrides the
    default for A/B runs; an explicit ``scheduler=`` argument beats the
    environment.
    """

    def __init__(self, scheduler: Optional[str] = None):
        self._now: float = 0.0
        # The argument wins over the environment; the environment wins
        # over the default.  Bad names fail *here*, naming their source
        # and every valid kind, not deep inside construction.
        if scheduler:
            kind, source = scheduler, "Simulator(scheduler=...)"
        else:
            kind = os.environ.get("REPRO_SIM_SCHEDULER") or ""
            if kind:
                source = "the REPRO_SIM_SCHEDULER environment variable"
            else:
                kind, source = _DEFAULT_SCHEDULER, "the built-in default"
        try:
            self._sched = make_scheduler(kind)
        except ValueError as exc:
            raise ValueError(f"{exc}; the kind came from {source}") from None
        self._sched_kind = kind
        # Bound-method aliases: the push paths run once per scheduled
        # event, so the extra attribute hop through ``_sched`` matters.
        self._push = self._sched.push
        self._push_timer = self._sched.push_timer
        self._push_now = self._sched.push_now
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        #: free lists for the two hot-path entry shapes (see module docs)
        self._timeout_pool: list[Timeout] = []
        self._callback_pool: list[_Callback] = []
        #: number of events processed so far (diagnostics / loop guards)
        self.event_count: int = 0
        #: event-trace sink for the A/B ordering harness (usually None)
        self._trace = _TRACE_SINK

    # -- clock ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def scheduler_kind(self) -> str:
        """The scheduler implementation this simulator runs on."""
        return self._sched_kind

    def sched_stats(self) -> dict:
        """Scheduler-internal counters (live entries, cancels, resizes...)."""
        return self._sched.stats()

    # -- event factories ----------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> Timeout:
        """A pooled ``timeout(delay)`` for fire-and-forget waits.

        Contract: the caller must not retain the returned event past its
        firing — the run loop recycles it into a free list as soon as its
        callbacks have run.  The canonical use is an anonymous
        ``yield sim.sleep(dt)`` inside a model process.  Do not pass the
        result to ``any_of``/``all_of`` or store it; use ``timeout()``
        for those cases.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimTimeError(f"negative timeout delay: {delay!r}")
            t = pool.pop()
            t.delay = delay
            t.callbacks = []
            t._value = None
            t._ok = True
            # Inlined ``_schedule_timer`` (delay already validated and a
            # pool entry is by definition not scheduled).
            t._scheduled = True
            t._entry = self._push_timer(self._now + delay, NORMAL, next(self._seq), t)
            return t
        t = Timeout(self, delay)
        t._pooled = True
        return t

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimTimeError(f"cannot schedule event in the past (delay={delay!r})")
        if event._scheduled:
            raise RuntimeError(f"{event!r} is already scheduled")
        event._scheduled = True
        if delay == 0.0:
            # Delay-0 events fire at the current time: the composite
            # scheduler keeps them in plain FIFO deques (already in
            # (time, prio, seq) order) — no priority-queue work at all.
            event._entry = self._push_now(self._now, priority, next(self._seq), event)
        else:
            event._entry = self._push(
                self._now + delay, priority, next(self._seq), event
            )

    def _schedule_timer(self, event: Event, delay: float) -> None:
        """Schedule the high-churn ``Timeout`` population (timer wheel)."""
        if delay < 0:
            raise SimTimeError(f"cannot schedule event in the past (delay={delay!r})")
        if event._scheduled:
            raise RuntimeError(f"{event!r} is already scheduled")
        event._scheduled = True
        event._entry = self._push_timer(self._now + delay, NORMAL, next(self._seq), event)

    def succeed_later(
        self, event: Event, delay: float, value: Any = None, priority: int = NORMAL
    ) -> Event:
        """Schedule ``event`` to succeed with ``value`` after ``delay``.

        Equivalent to a timed ``event.succeed(value)`` but with a single
        heap entry — the event itself — instead of a trampoline callback
        plus a second same-time entry.
        """
        if event._value is not _PENDING:
            raise RuntimeError(f"{event!r} has already been triggered")
        event._ok = True
        event._value = value
        self._schedule(event, priority, delay)
        return event

    def call_after(self, delay: float, fn: Callable[..., None], *args: Any) -> list:
        """Run ``fn(*args)`` after ``delay`` seconds (closure-free).

        The fast-path variant of :meth:`schedule_callback`: nothing can
        wait on the result, no :class:`Event` is allocated, and the
        scheduler entry is recycled through a free list.  This is what
        the wire, switch, and bus models use for their per-frame timed
        callbacks.  Returns an opaque handle accepted by
        :meth:`cancel_callback`.
        """
        if delay < 0:
            raise SimTimeError(f"cannot schedule callback in the past (delay={delay!r})")
        pool = self._callback_pool
        cb = pool.pop() if pool else _Callback()
        cb.fn = fn
        cb.args = args
        return self._push_timer(self._now + delay, NORMAL, next(self._seq), cb)

    def call_group(self, delay: float, calls: list) -> list:
        """Run a list of ``(fn, args)`` pairs after ``delay`` seconds.

        Bulk-injection companion to :meth:`call_after`: the whole group
        rides a single pooled scheduler entry and fires in list order at
        one timestamp.  Used by the flow-clock fast path to deliver a
        frame train with one event instead of one per frame.  Returns a
        :meth:`cancel_callback`-compatible handle.
        """
        return self.call_after(delay, _run_group, calls)

    def cancel_callback(self, handle) -> bool:
        """Cancel a pending :meth:`call_after`; True if it was withdrawn.

        ``handle`` is the value ``call_after`` returned.  Only valid
        before the callback fires — holders must clear their reference
        when the callback runs (the run loop detaches the payload from
        the entry at dispatch, so a stale cancel is a safe no-op).
        """
        cb = handle[3]
        if cb is None or cb.fn is None:
            return False
        self._sched.cancel(handle)
        cb.fn = None
        cb.args = ()
        if len(self._callback_pool) < _POOL_MAX:
            self._callback_pool.append(cb)
        return True

    def cancel(self, event: Event) -> bool:
        """Withdraw a scheduled-but-unprocessed event from the queue.

        Returns True if the event was queued and is now back to the
        *pending* state (it may be succeeded/failed again later); False
        if there was nothing to cancel (never scheduled, already fired,
        or already cancelled).  O(1) on every scheduler — the timer
        wheel in particular never sorts a cancelled timer.
        """
        entry = event._entry
        if entry is None or event.callbacks is None or not event._scheduled:
            return False
        if entry[3] is not event:
            return False
        self._sched.cancel(entry)
        event._entry = None
        event._scheduled = False
        event._value = _PENDING
        return True

    def schedule_callback(
        self, delay: float, fn: Callable[[], None], name: str = "callback"
    ) -> Event:
        """Run ``fn()`` after ``delay`` seconds; returns the backing event."""
        ev = Event(self, name=name)
        ev.callbacks.append(lambda _ev: fn())
        ev._ok = True
        ev._value = None
        self._schedule(ev, NORMAL, delay)
        return ev

    # -- execution ----------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none are queued."""
        t = self._sched.peek_time()
        return t if t is not None else float("inf")

    def _fire(self, item) -> None:
        """Dispatch one popped payload — the single copy of the fast paths.

        Both :meth:`step` and :meth:`run` funnel through here, so the
        ``_Callback`` and pooled-``Timeout`` recycling logic exists
        exactly once.
        """
        if type(item) is _Callback:
            fn, args = item.fn, item.args
            fn(*args)
            item.fn = None
            item.args = ()
            pool = self._callback_pool
            if len(pool) < _POOL_MAX:
                pool.append(item)
            return
        callbacks, item.callbacks = item.callbacks, None
        for fn in callbacks:
            fn(item)
        if not item._ok and not callbacks:
            # A failed event nobody waited on: surface the error instead of
            # silently dropping it (mirrors simpy's behaviour).
            raise item._value
        if type(item) is Timeout and item._pooled:
            pool = self._timeout_pool
            if len(pool) < _POOL_MAX:
                item._value = _PENDING
                pool.append(item)

    def step(self) -> None:
        """Process exactly one event (slow path; ``run()`` binds locals)."""
        entry = self._sched.pop()
        if entry is None:
            raise IndexError("step from an empty schedule")
        when = entry[0]
        if when < self._now:  # pragma: no cover - scheduler order guarantee
            raise SimTimeError("event schedule time went backwards")
        self._now = when
        self.event_count += 1
        item = entry[3]
        entry[3] = None  # detach: stale cancel handles become no-ops
        if self._trace is not None:
            self._trace.append((when, entry[1], entry[2], type(item).__name__))
        self._fire(item)

    def run(
        self, until: Optional[float | Event] = None, max_events: Optional[int] = None
    ) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the heap is empty.
            ``float``
                run until the clock reaches that time.
            ``Event``
                run until that event is processed; returns its value
                (raising its exception if it failed).
        max_events:
            optional hard cap on processed events (guards against
            accidental infinite event loops in tests).
        """
        stop_value: list[Any] = []
        if isinstance(until, Event):
            target = until

            def _stop(ev: Event) -> None:
                stop_value.append(ev)

            target.add_callback(_stop)
            horizon = float("inf")
        elif until is None:
            target = None
            horizon = float("inf")
        else:
            target = None
            horizon = float(until)
            if horizon < self._now:
                raise SimTimeError(
                    f"cannot run until {horizon!r}: clock already at {self._now!r}"
                )

        # The loop below is step()/_fire() with everything hot bound to
        # locals and every payload kind dispatched inline — one type
        # check each for the two dominant shapes (``_Callback``, pooled
        # ``Timeout``) instead of a shared megamorphic ``_fire`` call.
        # The per-event overhead here bounds every figure sweep.
        sched = self._sched
        pop = sched.pop
        trace = self._trace
        cb_pool = self._callback_pool
        t_pool = self._timeout_pool
        callback_t = _Callback
        timeout_t = Timeout
        pending = _PENDING
        pool_max = _POOL_MAX
        finite = horizon != float("inf")
        limit = sys.maxsize if max_events is None else max_events
        processed = 0
        try:
            while not stop_value:
                if finite:
                    t = sched.peek_time()
                    if t is None or t > horizon:
                        # Drained (advance to the horizon) or next event
                        # beyond it; time-based runs end at the horizon.
                        self._now = horizon
                        break
                entry = pop()
                if entry is None:
                    break
                self._now = entry[0]
                processed += 1
                item = entry[3]
                entry[3] = None  # detach: stale cancel handles become no-ops
                if trace is not None:
                    trace.append((entry[0], entry[1], entry[2], type(item).__name__))
                if type(item) is callback_t:
                    fn = item.fn
                    args = item.args
                    item.fn = None
                    item.args = ()
                    if len(cb_pool) < pool_max:
                        cb_pool.append(item)
                    fn(*args)
                else:
                    # Inlined Event dispatch (the single other shape the
                    # scheduler ever holds); semantics identical to
                    # ``_fire``, which ``step()`` still uses.
                    callbacks = item.callbacks
                    item.callbacks = None
                    for fn in callbacks:
                        fn(item)
                    if type(item) is timeout_t:
                        if item._pooled and len(t_pool) < pool_max:
                            item._value = pending
                            t_pool.append(item)
                    elif not item._ok and not callbacks:
                        # A failed event nobody waited on: surface the
                        # error instead of silently dropping it.
                        raise item._value
                if processed >= limit:
                    raise SimulationRunaway(
                        f"exceeded max_events={max_events} (clock at {self._now:g}s)"
                    )
        finally:
            self.event_count += processed

        if target is not None:
            if not stop_value:
                raise RuntimeError(
                    f"simulation ran out of events before {target!r} triggered"
                )
            ev = stop_value[0]
            if ev._ok:
                return ev._value
            raise ev._value
        return None

    # -- observability -----------------------------------------------------------
    def register_telemetry(self, registry, prefix: str = "sim") -> None:
        """Register kernel instruments (pull-based; zero cost until read)."""
        registry.counter(f"{prefix}.events", lambda: float(self.event_count))
        registry.gauge(f"{prefix}.queued", lambda: float(len(self._sched)))
        for key in ("cancels", "resizes", "cascades", "far_rebuilds", "reseeds"):
            if key in self._sched.stats():
                registry.counter(
                    f"{prefix}.sched.{key}",
                    lambda k=key: float(self._sched.stats().get(k, 0)),
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now:g}s queued={len(self._sched)} "
            f"sched={self._sched_kind}>"
        )
