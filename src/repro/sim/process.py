"""Coroutine-style process authoring over the DES kernel.

The engine's :class:`~repro.sim.engine.Process` drives generators *and*
coroutines through one resume loop (see ``Event.__await__``), so a
workload can be written as a page of linear ``async`` code instead of a
callback state machine::

    from repro.sim import Environment

    env = Environment()
    inbox = env.store(name="inbox")

    async def producer():
        for i in range(4):
            await env.sleep(1e-6)        # pooled Timeout — same fast path
            await inbox.put(i)           # Store events are awaitable

    async def consumer():
        while True:
            item = await inbox.get()
            ...

    env.process(producer)
    env.process(consumer)
    env.run()

Both styles — ``await`` and ``yield`` — may be mixed freely in one
simulation; an existing generator helper is reused from a coroutine via
:func:`drive`::

    async def node(rank):
        await drive(driver.send_message(peer, nbytes))   # == yield from

Determinism rules
-----------------
A coroutine process compiles down to the exact event machinery the
generator (and raw-callback) code paths use: ``await env.sleep(dt)``
recycles the engine's pooled :class:`~repro.sim.engine.Timeout` entries,
``await store.get()`` resolves inline when an item is ready (no heap
trip), and the resume loop subscribes to pending events with the same
``(time, priority, seq)`` total order.  Rewriting a scenario from
``yield`` to ``await`` therefore changes **zero** events — a property
pinned by ``python -m repro.sim --ab-process`` and the process-identity
tests.  The rules that keep it that way:

* create events in the same order in both styles (event creation, not
  suspension, consumes sequence numbers);
* use :func:`drive` — not a child process — to inline a generator
  helper (a child process adds an ``Initialize`` event and a completion
  event);
* never rely on wall clock or global mutable state inside a body.

Interrupts
----------
``proc.interrupt(cause)`` throws :class:`~repro.errors.Interrupt` into a
suspended process at the *current* time, ahead of same-time ordinary
events.  The event it was waiting on stays pending; a process
interrupted while waiting on a ``Store``/``Container`` operation should
withdraw its claim with ``store.cancel(op)`` so a later item is not
handed to a waiter that no longer exists (see
``docs/processes.md``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from ..errors import ProcessError
from .engine import AllOf, AnyOf, Event, Process, Simulator, Timeout
from .resources import Container, Resource, Store

__all__ = ["Environment", "drive"]


class _Drive:
    """Awaitable view of an event-yielding generator (zero extra events).

    ``await drive(gen)`` is the coroutine spelling of ``yield from gen``:
    the generator itself becomes the awaitable's iterator, so every
    event it yields flows to the driving :class:`Process` unchanged and
    its ``return`` value becomes the value of the ``await`` expression.
    """

    __slots__ = ("_gen",)

    def __init__(self, gen):
        self._gen = gen

    def __await__(self):
        return self._gen


def drive(gen) -> _Drive:
    """Adapt a generator helper for ``await`` without spawning a process.

    Unlike ``env.process(gen)`` — which allocates a :class:`Process`
    plus its ``Initialize`` and completion events — ``drive`` inlines
    the generator into the awaiting process, exactly like ``yield
    from`` does in a generator body.  This is what keeps an
    ``await``-ported scenario event-for-event identical to its
    ``yield`` twin when it reuses existing generator primitives
    (driver ``send_message``/``recv_message``, ``Resource.acquire``,
    ``bus.transfer_proc``, ...).
    """
    if not hasattr(gen, "send") or not hasattr(gen, "throw"):
        raise ProcessError(f"drive() needs a generator, got {gen!r}")
    return _Drive(gen)


class Environment:
    """Process-authoring facade over a :class:`Simulator`.

    Wraps an existing simulator (``Environment(sim)``) or owns a fresh
    one (``Environment()``; ``scheduler=`` picks the queue kind).  All
    factories delegate to the engine's pooled fast paths — the facade
    adds no per-event cost, it only shortens the spelling.
    """

    __slots__ = ("sim",)

    def __init__(
        self, sim: Optional[Simulator] = None, *, scheduler: Optional[str] = None
    ):
        if sim is not None and scheduler is not None:
            raise ProcessError(
                "pass either an existing Simulator or scheduler=, not both"
            )
        self.sim = sim if sim is not None else Simulator(scheduler=scheduler)

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.sim.now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self.sim.active_process

    # -- event factories ---------------------------------------------------
    def event(self, name: str = "") -> Event:
        """A fresh pending event (``succeed``/``fail`` it from anywhere)."""
        return self.sim.event(name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing after ``delay`` seconds, holding ``value``.

        Use this form when the event is stored, composed with
        :meth:`any_of`/:meth:`all_of`, or cancelled; for anonymous
        fire-and-forget waits prefer :meth:`sleep` (pooled).
        """
        return self.sim.timeout(delay, value)

    def sleep(self, delay: float) -> Timeout:
        """A pooled ``timeout(delay)`` for ``await env.sleep(dt)``.

        Same contract as :meth:`Simulator.sleep`: the returned event
        must not be retained past its firing — awaiting (or yielding)
        it immediately is the canonical use.
        """
        return self.sim.sleep(delay)

    def process(
        self, fn: Callable | Any, *args: Any, name: str = "", **kwargs: Any
    ) -> Process:
        """Start a process from an async/generator function (or body).

        ``fn`` may be an ``async def`` function, a generator function
        (called here with ``*args``/``**kwargs``), or an
        already-created coroutine/generator object (no arguments
        allowed then).  Returns the :class:`Process`, itself awaitable.
        """
        body = fn
        if not hasattr(body, "throw") and callable(body):
            body = fn(*args, **kwargs)
        elif args or kwargs:
            raise ProcessError(
                f"arguments given with an already-created process body {fn!r}"
            )
        if not hasattr(body, "throw"):
            raise ProcessError(
                f"process body must be an async/generator function or a "
                f"coroutine/generator object, got {fn!r}"
            )
        return self.sim.process(body, name=name or getattr(fn, "__name__", ""))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: fires when every constituent has fired."""
        return self.sim.all_of(events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: fires when any constituent has fired."""
        return self.sim.any_of(events)

    # -- resource factories ------------------------------------------------
    def store(self, capacity: Optional[int] = None, name: str = "store") -> Store:
        """A FIFO :class:`Store` on this environment's simulator."""
        return Store(self.sim, capacity=capacity, name=name)

    def resource(self, capacity: int = 1, name: str = "resource") -> Resource:
        """A FIFO :class:`Resource` on this environment's simulator."""
        return Resource(self.sim, capacity=capacity, name=name)

    def container(
        self,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "container",
    ) -> Container:
        """A continuous-quantity :class:`Container` on this simulator."""
        return Container(self.sim, capacity=capacity, init=init, name=name)

    # -- execution ---------------------------------------------------------
    def run(self, until=None, max_events: Optional[int] = None) -> Any:
        """Run the simulation (see :meth:`Simulator.run`)."""
        return self.sim.run(until=until, max_events=max_events)

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none are queued."""
        return self.sim.peek()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Environment over {self.sim!r}>"
