"""Shared-resource primitives for the DES kernel.

These are the queueing building blocks the hardware models are made of:

``Resource``
    ``capacity`` identical servers with a FIFO wait queue (a mutex when
    ``capacity == 1``).  Used for DMA channels, CPU cores, switch ports.

``Store``
    An unbounded-or-bounded FIFO of Python objects with blocking ``put``
    and ``get``.  Used for NIC rings, FIFOs between INIC cores, mailbox
    queues between simulated processes.

``Container``
    A continuous quantity with blocking ``put``/``get`` of amounts.  Used
    for buffer-space accounting (switch output buffers, INIC memory).

All waiting is expressed as events, so processes compose them with
timeouts via :class:`~repro.sim.engine.AnyOf` — and, since every event
is awaitable (:meth:`~repro.sim.engine.Event.__await__`), a coroutine
process simply writes ``item = await store.get()`` / ``await
store.put(item)``; the inline fast paths below are shared by both
styles.  A process interrupted while one of these operations is still
pending should withdraw it with ``store.cancel(op)`` /
``container.cancel(op)`` so the queue never hands a value to a waiter
that stopped listening (see ``docs/processes.md``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from ..errors import SimulationError
from .engine import Event, Simulator, _PENDING

__all__ = ["Resource", "Request", "Store", "Container"]


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Triggers when the resource grants a slot.  Must be released with
    :meth:`Resource.release` (or used via the ``with``-like helper
    :meth:`Resource.acquire`).  The display name is built lazily —
    requests are created on the DMA hot path.
    """

    __slots__ = ("resource", "_t0")

    def __init__(self, resource: "Resource"):
        # Inlined Event.__init__ (hot path; name built on demand).
        self.sim = resource.sim
        self._name = None
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._scheduled = False
        self._entry = None
        self.resource = resource
        #: issue time, for wait accounting in ``Resource._grant``
        self._t0 = self.sim.now

    @property
    def name(self) -> str:
        if self._name is None:
            return f"request({self.resource.name})"
        return self._name

    @name.setter
    def name(self, value: str) -> None:
        self._name = value


class Resource:
    """``capacity`` identical servers with FIFO queueing."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._users: set[Request] = set()
        self._queue: Deque[Request] = deque()
        # -- statistics ----------------------------------------------------
        self.total_requests = 0
        self.total_wait_time = 0.0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        req = Request(self)
        self.total_requests += 1
        if len(self._users) < self.capacity:
            self._grant(req)
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot (or cancel a queued request)."""
        if request in self._users:
            self._users.remove(request)
            self._dispatch()
        else:
            try:
                self._queue.remove(request)
            except ValueError:
                raise SimulationError(
                    f"release of unknown request on {self.name!r}"
                ) from None

    def _grant(self, req: Request) -> None:
        self._users.add(req)
        self.total_wait_time += self.sim.now - req._t0
        req.succeed(req)

    def _dispatch(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            self._grant(self._queue.popleft())

    def acquire(self):
        """Generator helper: ``req = yield from res.acquire()``.

        Yields the request event and returns the granted request, so the
        caller can later ``res.release(req)``.
        """
        req = self.request()
        yield req
        return req

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name!r} {self.count}/{self.capacity} used, "
            f"{self.queue_length} queued>"
        )


class _StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, sim: Simulator, item: Any):
        super().__init__(sim, name="store.put")
        self.item = item


class _StoreGet(Event):
    __slots__ = ()


class Store:
    """A FIFO of items with blocking put/get.

    ``capacity=None`` means unbounded (puts never block).

    Fast path: a ``put`` that fits (and hands to no waiter) and a ``get``
    that finds an item return *already-processed* events — a process
    yielding one continues inline without a trip through the event heap.
    Ordering stays deterministic (the resolution happens at the moment of
    the call); only genuinely blocking operations suspend.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: str = "store",
    ):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[_StorePut] = deque()
        self._getters: Deque[_StoreGet] = deque()
        # -- statistics ----------------------------------------------------
        self.total_puts = 0
        self.total_gets = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event fires once it is stored."""
        self.total_puts += 1
        if self.is_full:
            ev = _StorePut(self.sim, item)
            self._putters.append(ev)
            return ev
        # Fast path: the item is stored (or handed over) right now, so the
        # putter's own event resolves inline — zero heap entries for it,
        # and the event is born already-processed (``__new__`` skips the
        # callbacks-list allocation ``Event.__init__`` would do).
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)
            if len(self.items) > self.max_occupancy:
                self.max_occupancy = len(self.items)
        ev = _StorePut.__new__(_StorePut)
        ev.sim = self.sim
        ev._name = "store.put"
        ev.callbacks = None
        ev._value = None
        ev._ok = True
        ev._scheduled = False
        ev._entry = None
        ev.item = item
        return ev

    def get(self) -> Event:
        """Remove the oldest item; the event's value is the item."""
        self.total_gets += 1
        if self.items:
            # Fast path: resolve inline (the getter never suspends); the
            # event is born already-processed, no callbacks list needed.
            item = self.items.popleft()
            ev = _StoreGet.__new__(_StoreGet)
            ev.sim = self.sim
            ev._name = "store.get"
            ev.callbacks = None
            ev._value = item
            ev._ok = True
            ev._scheduled = False
            ev._entry = None
            self._drain_putters()
        else:
            ev = _StoreGet(self.sim, name="store.get")
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self.items:
            item = self.items.popleft()
            self._drain_putters()
            return True, item
        return False, None

    def cancel(self, op: Event) -> bool:
        """Withdraw a still-pending ``get``/``put`` operation.

        The interrupt-recovery primitive: a process thrown an
        :class:`~repro.errors.Interrupt` while waiting on a store
        operation is detached from the event, but the operation itself
        stays queued — without this call a later item would be handed
        to (or space reserved for) a waiter that no longer listens.
        Returns ``True`` if the operation was found and withdrawn,
        ``False`` if it already completed (or was never pending here).
        A cancelled put's item is not admitted.
        """
        if op.triggered:
            return False
        for queue in (self._getters, self._putters):
            try:
                queue.remove(op)
                return True
            except ValueError:
                continue
        return False

    def _admit(self, ev: _StorePut) -> None:
        if self._getters:
            # Hand directly to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(ev.item)
        else:
            self.items.append(ev.item)
            self.max_occupancy = max(self.max_occupancy, len(self.items))
        ev.succeed(None)

    def _drain_putters(self) -> None:
        while self._putters and not self.is_full:
            self._admit(self._putters.popleft())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"<Store {self.name!r} {len(self.items)}/{cap}>"


class _ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, sim: Simulator, amount: float):
        super().__init__(sim, name="container.put")
        self.amount = amount


class _ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, sim: Simulator, amount: float):
        super().__init__(sim, name="container.get")
        self.amount = amount


class Container:
    """A continuous quantity (e.g. bytes of buffer space).

    ``get(amount)`` blocks until at least ``amount`` is available;
    ``put(amount)`` blocks until it fits under ``capacity``.
    Waiters are served FIFO *without overtaking*: a large get at the head
    of the queue blocks smaller ones behind it (prevents starvation).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "container",
    ):
        if capacity <= 0:
            raise SimulationError(f"container capacity must be > 0, got {capacity}")
        if not 0 <= init <= capacity:
            raise SimulationError(f"init level {init} outside [0, {capacity}]")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._level = float(init)
        self._putters: Deque[_ContainerPut] = deque()
        self._getters: Deque[_ContainerGet] = deque()
        self.min_level = self._level
        self.max_level = self._level

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError(f"container put of negative amount {amount}")
        ev = _ContainerPut(self.sim, amount)
        self._putters.append(ev)
        self._dispatch()
        return ev

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError(f"container get of negative amount {amount}")
        if amount > self.capacity:
            raise SimulationError(
                f"container get of {amount} exceeds capacity {self.capacity}"
            )
        ev = _ContainerGet(self.sim, amount)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(self, amount: float) -> bool:
        """Non-blocking get; only succeeds if no getter is already waiting."""
        if not self._getters and self._level >= amount:
            self._set_level(self._level - amount)
            self._dispatch()
            return True
        return False

    def cancel(self, op: Event) -> bool:
        """Withdraw a still-pending ``get``/``put`` (see ``Store.cancel``).

        Removing a blocking head operation can unblock the queue behind
        it, so the dispatch loop reruns after a successful withdrawal.
        """
        if op.triggered:
            return False
        for queue in (self._getters, self._putters):
            try:
                queue.remove(op)
            except ValueError:
                continue
            self._dispatch()
            return True
        return False

    def _set_level(self, level: float) -> None:
        self._level = level
        self.min_level = min(self.min_level, level)
        self.max_level = max(self.max_level, level)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and self._level + self._putters[0].amount <= self.capacity:
                ev = self._putters.popleft()
                self._set_level(self._level + ev.amount)
                ev.succeed(None)
                progressed = True
            if self._getters and self._level >= self._getters[0].amount:
                ev = self._getters.popleft()
                self._set_level(self._level - ev.amount)
                ev.succeed(None)
                progressed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Container {self.name!r} {self._level:g}/{self.capacity:g}>"
