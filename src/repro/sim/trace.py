"""Instrumentation: spans, counters, and timelines.

Every experiment in the paper is a *decomposition* of run time into
phases (Fig. 4(b): transpose comm vs compute; Fig. 5(a): bucket-sort
phases vs comm).  The :class:`TraceRecorder` collects named spans so the
benchmark harness can report exactly those decompositions.

A span is ``(name, start, end, meta)``.  Spans with the same name
aggregate; overlapping spans of one name are merged with interval union
when computing *wall* time (so "communication time" with 15 concurrent
transfers is the union, not the sum — matching how the paper reports
phase times).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from .engine import Simulator

__all__ = ["Span", "TraceRecorder", "merge_intervals"]


@dataclass(frozen=True)
class Span:
    """A closed interval of simulation time attributed to a named phase."""

    name: str
    start: float
    end: float
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


def merge_intervals(intervals: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping intervals, as a sorted disjoint list."""
    ivs = sorted(intervals)
    merged: list[tuple[float, float]] = []
    for s, e in ivs:
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


class _OpenSpan:
    __slots__ = ("recorder", "name", "start", "meta")

    def __init__(self, recorder: "TraceRecorder", name: str, meta: dict[str, Any]):
        self.recorder = recorder
        self.name = name
        self.start = recorder.sim.now
        self.meta = meta

    def close(self) -> Span:
        span = Span(self.name, self.start, self.recorder.sim.now, self.meta)
        self.recorder.spans.append(span)
        return span


class TraceRecorder:
    """Collects spans and counters during a simulation run."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.spans: list[Span] = []
        self.counters: dict[str, float] = defaultdict(float)

    # -- spans -----------------------------------------------------------------
    def open(self, name: str, **meta: Any) -> _OpenSpan:
        """Begin a span; call ``.close()`` on the returned handle."""
        return _OpenSpan(self, name, meta)

    def record(self, name: str, start: float, end: float, **meta: Any) -> Span:
        """Record a span with explicit bounds."""
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts ({start}..{end})")
        span = Span(name, start, end, meta)
        self.spans.append(span)
        return span

    def span(self, name: str, **meta: Any):
        """Decorator-free context helper for processes::

            handle = trace.open("comm", rank=3)
            yield ...
            handle.close()
        """
        return self.open(name, **meta)

    # -- counters --------------------------------------------------------------
    def add(self, counter: str, amount: float = 1.0) -> None:
        self.counters[counter] += amount

    def get(self, counter: str) -> float:
        return self.counters.get(counter, 0.0)

    # -- queries -----------------------------------------------------------------
    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def total(self, name: str) -> float:
        """Sum of durations of all spans named ``name`` (CPU-time view)."""
        return sum(s.duration for s in self.spans if s.name == name)

    def wall(self, name: str) -> float:
        """Union duration of spans named ``name`` (wall-clock view)."""
        ivs = merge_intervals(
            (s.start, s.end) for s in self.spans if s.name == name
        )
        return sum(e - s for s, e in ivs)

    def names(self) -> list[str]:
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.name, None)
        return list(seen)

    def breakdown(self, wall: bool = True) -> dict[str, float]:
        """Phase-name -> time map (wall union by default)."""
        return {n: (self.wall(n) if wall else self.total(n)) for n in self.names()}

    def clear(self) -> None:
        self.spans.clear()
        self.counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceRecorder {len(self.spans)} spans, {len(self.counters)} counters>"
