"""Kernel diagnostics CLI: scheduler microbenchmark and A/B harnesses.

Three modes::

    python -m repro.sim --bench          # raw scheduler micro-timings
    python -m repro.sim --bench --json   # same, machine-readable
    python -m repro.sim --ab             # heap-vs-{calendar,native} ordering diff
    python -m repro.sim --ab-process     # callback-vs-coroutine scenario diff

``--bench`` times the bare scheduler structures (no engine, no models)
over three operation mixes so a scheduler change can be judged in
isolation:

* ``hold``    — classic hold model: push N timed events, pop them all.
* ``churn``   — the timeout pattern: push N timers, cancel 90% before
  they fire, pop the survivors (the case the timer wheel exists for —
  a cancelled timer must never be sorted).
* ``sawtooth`` — interleaved push/pop with monotone time, the shape the
  run loop actually produces.

``--ab-process`` is the same proof for the coroutine process layer
(:mod:`repro.sim.process`): each ported netbench scenario runs once in
its original generator ("callback") form and once as its ``async`` twin
— under every scheduler kind — and the ``(when, prio, seq, type)``
event streams plus results must match exactly.  An empty diff means
authoring style is pure syntax: the process API adds zero events and
perturbs nothing.

``--ab`` executes the ci perf suite once on the reference heap
scheduler and once per challenger kind (default: the calendar composite
and the native backend) — with the engine's event trace sink installed —
and diffs each challenger's ``(when, prio, seq, type)`` stream against
the heap baseline.  An empty diff is the proof behind the byte-identical
``results/fig*.csv`` guarantee; any divergence prints the first
mismatching event and exits 1.  The PASS line names the backend that
actually ran (the native kind reports whether the compiled extension or
the pure-python fallback served the run).
"""

from __future__ import annotations

import json
import os
import sys
import time
from random import Random

from .sched import SCHEDULER_KINDS, make_scheduler

_MIXES = ("hold", "churn", "sawtooth")


def _mix_hold(sched, n: int, rng: Random) -> int:
    for seq in range(n):
        sched.push(rng.random(), 1, seq, seq)
    while sched.pop() is not None:
        pass
    return 2 * n  # n pushes + n pops


def _mix_churn(sched, n: int, rng: Random) -> int:
    entries = []
    for seq in range(n):
        entries.append(sched.push_timer(rng.random() * 1e-3, 1, seq, seq))
    cancelled = 0
    for i, entry in enumerate(entries):
        if i % 10:  # cancel 9 of every 10 before they fire
            sched.cancel(entry)
            cancelled += 1
    while sched.pop() is not None:
        pass
    return n + cancelled + (n - cancelled)


def _mix_sawtooth(sched, n: int, rng: Random) -> int:
    seq = 0
    now = 0.0
    for i in range(n):
        sched.push(now + rng.random() * 1e-4, 1, seq, seq)
        seq += 1
        if i & 1:
            entry = sched.pop()
            if entry is not None:
                now = entry[0]
    while sched.pop() is not None:
        pass
    return 2 * n


_MIX_FNS = {"hold": _mix_hold, "churn": _mix_churn, "sawtooth": _mix_sawtooth}


def bench_report(n: int, seed: int, kinds: tuple[str, ...]) -> dict:
    """Time every (kind, mix) cell; returns a JSON-ready report.

    Each scheduler entry records ``backend`` metadata from its own
    ``stats()`` — for the native kind that distinguishes the compiled
    extension (``compiled: true``) from the pure-python fallback.
    """
    report: dict = {"n": n, "seed": seed, "mixes": list(_MIXES), "schedulers": {}}
    for kind in kinds:
        probe = make_scheduler(kind).stats()
        entry = {
            "backend": probe["kind"],
            "compiled": bool(probe.get("compiled", False)),
            "ops_per_sec": {},
        }
        for mix in _MIXES:
            sched = make_scheduler(kind)
            rng = Random(seed)
            t0 = time.perf_counter()
            ops = _MIX_FNS[mix](sched, n, rng)
            dt = time.perf_counter() - t0
            if len(sched):
                raise RuntimeError(
                    f"{kind}/{mix}: {len(sched)} entries left queued"
                )
            entry["ops_per_sec"][mix] = ops / dt
        report["schedulers"][kind] = entry
    return report


def run_bench(n: int, seed: int, kinds: tuple[str, ...], as_json: bool = False) -> int:
    try:
        report = bench_report(n, seed, kinds)
    except RuntimeError as exc:
        print(f"FAIL {exc}")
        return 1
    if as_json:
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    print(f"scheduler microbenchmark: n={n} seed={seed}")
    header = f"{'kind':>10} | " + " | ".join(f"{m:>14}" for m in _MIXES)
    print(header)
    print("-" * len(header))
    for kind in kinds:
        entry = report["schedulers"][kind]
        cells = [
            f"{entry['ops_per_sec'][mix] / 1e6:>10.2f}Mo/s" for mix in _MIXES
        ]
        print(f"{kind:>10} | " + " | ".join(cells))
        if kind == "native" and not entry["compiled"]:
            print(f"{'':>10}   (pure-python fallback; extension not built)")
    print("(Mo/s = million scheduler operations per second, higher is better)")
    return 0


def _run_suite(kind: str, scale_name: str):
    """Run the perf suite under ``kind``; returns (trace, results)."""
    from ..bench.harness import Scale
    from ..bench.sweep import _RUNNERS, perf_points
    from . import engine

    saved = os.environ.get("REPRO_SIM_SCHEDULER")
    sink: list = []
    engine.set_trace_sink(sink)
    os.environ["REPRO_SIM_SCHEDULER"] = kind
    try:
        results = {}
        for spec in perf_points(Scale.by_name(scale_name)):
            r = _RUNNERS[spec.kind](spec.params)
            results[spec.name] = (r["events"], r["makespan"])
    finally:
        engine.set_trace_sink(None)
        if saved is None:
            os.environ.pop("REPRO_SIM_SCHEDULER", None)
        else:
            os.environ["REPRO_SIM_SCHEDULER"] = saved
    return sink, results


_AB_DEFAULT_KINDS = ("calendar", "native")


def _backend_label(kind: str) -> str:
    """Human label for the backend ``kind`` resolves to right now."""
    stats = make_scheduler(kind).stats()
    if kind == "native":
        return "native/compiled" if stats.get("compiled") else "native/fallback"
    return kind


def run_ab(scale_name: str, kinds: tuple[str, ...] = _AB_DEFAULT_KINDS) -> int:
    """Diff each challenger kind's event stream against the heap baseline."""
    trace_a, res_a = _run_suite("heap", scale_name)
    exit_code = 0
    for kind in kinds:
        if kind == "heap":
            continue
        label = _backend_label(kind)
        trace_b, res_b = _run_suite(kind, scale_name)
        ok = True
        for name in res_a:
            if res_a[name] != res_b.get(name):
                print(f"FAIL {name}: heap {res_a[name]} != {label} {res_b.get(name)}")
                ok = False
        if len(trace_a) != len(trace_b):
            print(
                f"FAIL trace length: heap {len(trace_a)} != {label} {len(trace_b)}"
            )
            ok = False
        for i, (a, b) in enumerate(zip(trace_a, trace_b)):
            if a != b:
                print(f"FAIL first divergence at event {i}: heap {a} != {label} {b}")
                ok = False
                break
        if ok:
            print(
                f"PASS heap == {label}: {len(res_a)} scenarios, "
                f"{len(trace_a)} events order-identical at scale {scale_name!r}"
            )
        else:
            exit_code = 1
    return exit_code


def _run_scenario(fn, kind: str):
    """Run one netbench scenario under ``kind``; returns (trace, result)."""
    from . import engine

    saved = os.environ.get("REPRO_SIM_SCHEDULER")
    sink: list = []
    engine.set_trace_sink(sink)
    os.environ["REPRO_SIM_SCHEDULER"] = kind
    try:
        res = fn()
    finally:
        engine.set_trace_sink(None)
        if saved is None:
            os.environ.pop("REPRO_SIM_SCHEDULER", None)
        else:
            os.environ["REPRO_SIM_SCHEDULER"] = saved
    return sink, (res.nbytes, res.repetitions, res.total_time)


def run_ab_process(kinds: tuple[str, ...] = SCHEDULER_KINDS) -> int:
    """Diff each ported coroutine scenario against its callback twin.

    For every scheduler kind, every scenario pair must produce the
    identical ``(when, prio, seq, type)`` stream and result; the
    coroutine trace must also be identical across kinds (anchored to
    the first kind's run).
    """
    from ..apps import netbench

    pairs = (
        ("tcp-pingpong", netbench.tcp_pingpong, netbench.tcp_pingpong_proc),
        ("inic-pingpong", netbench.inic_pingpong, netbench.inic_pingpong_proc),
        ("inic-stream", netbench.inic_stream, netbench.inic_stream_proc),
    )
    exit_code = 0
    anchors: dict[str, list] = {}
    for kind in kinds:
        label = _backend_label(kind)
        for name, callback_fn, proc_fn in pairs:
            trace_a, res_a = _run_scenario(callback_fn, kind)
            trace_b, res_b = _run_scenario(proc_fn, kind)
            ok = True
            if res_a != res_b:
                print(f"FAIL {name} [{label}]: callback {res_a} != process {res_b}")
                ok = False
            if len(trace_a) != len(trace_b):
                print(
                    f"FAIL {name} [{label}] trace length: callback "
                    f"{len(trace_a)} != process {len(trace_b)}"
                )
                ok = False
            for i, (a, b) in enumerate(zip(trace_a, trace_b)):
                if a != b:
                    print(
                        f"FAIL {name} [{label}] first divergence at event "
                        f"{i}: callback {a} != process {b}"
                    )
                    ok = False
                    break
            anchor = anchors.setdefault(name, trace_b)
            if ok and trace_b != anchor:
                print(
                    f"FAIL {name} [{label}]: process trace differs from "
                    f"the {kinds[0]} run"
                )
                ok = False
            if ok:
                print(
                    f"PASS {name} [{label}]: callback == process, "
                    f"{len(trace_a)} events order-identical"
                )
            else:
                exit_code = 1
    return exit_code


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.sim", description=__doc__.splitlines()[0]
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--bench", action="store_true",
        help="microbenchmark the raw scheduler structures",
    )
    mode.add_argument(
        "--ab", action="store_true",
        help="diff heap-vs-challenger event order over the perf suite",
    )
    mode.add_argument(
        "--ab-process", action="store_true",
        help="diff callback-vs-coroutine event order over the ported "
        "netbench scenarios (all scheduler kinds)",
    )
    parser.add_argument(
        "--n", type=int, default=100_000,
        help="(--bench) events per mix (default 100000)",
    )
    parser.add_argument("--seed", type=int, default=0x5EED)
    parser.add_argument(
        "--kinds", nargs="+", default=None,
        choices=list(SCHEDULER_KINDS),
        help="(--bench) schedulers to time (default: all); "
        "(--ab) challengers to diff against heap (default: calendar native)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="(--bench) emit the report as JSON instead of a table",
    )
    parser.add_argument(
        "--scale", default="ci", choices=["ci", "bench", "paper"],
        help="(--ab) suite scale to diff (default ci)",
    )
    args = parser.parse_args(argv)
    if args.bench:
        kinds = tuple(args.kinds) if args.kinds else SCHEDULER_KINDS
        return run_bench(args.n, args.seed, kinds, as_json=args.json)
    if args.ab_process:
        kinds = tuple(args.kinds) if args.kinds else SCHEDULER_KINDS
        return run_ab_process(kinds)
    kinds = tuple(args.kinds) if args.kinds else _AB_DEFAULT_KINDS
    return run_ab(args.scale, kinds)


if __name__ == "__main__":
    sys.exit(main())
