"""Memory-hierarchy model: cache-fit-dependent effective bandwidth.

The paper leans on two memory-system observations:

* the FFT compute curve "is smooth except at 2-3 processors and 6-8
  processors where the local partition fits into a faster level of the
  memory hierarchy" (Section 4.1) — so per-element compute cost must be a
  function of *working-set size relative to the caches*;
* count sort belongs on the host because "cache memory bandwidth on a
  commodity processor is much higher than the comparable memory bandwidth
  for an INIC" (Section 3.2.2), while bucket sort's random writes are
  DRAM-bound — so streaming vs random access must be distinguished.

The model is deliberately simple: a stack of levels, each with a
capacity, a streaming bandwidth and a random-access bandwidth.  The
effective bandwidth for a working set is that of the smallest level that
contains it, blended linearly across a transition band so curves kink
(visibly change slope) rather than step discontinuously — matching the
measured curves in the paper, where partitions straddle cache boundaries
across 2-3 adjacent processor counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import MemoryModelError

__all__ = ["CacheLevel", "MemoryHierarchy", "AccessPattern"]


class AccessPattern:
    """Access-pattern tags for bandwidth selection."""

    STREAM = "stream"
    RANDOM = "random"

    ALL = (STREAM, RANDOM)


@dataclass(frozen=True)
class CacheLevel:
    """One level of the hierarchy.

    Parameters
    ----------
    name:
        "L1", "L2", "DRAM", ...
    capacity:
        bytes this level holds; the last level should be ``float('inf')``.
    stream_bw:
        sequential-access bandwidth in bytes/s.
    random_bw:
        random-access (cache-line-granular) bandwidth in bytes/s.
    latency:
        access latency in seconds (used for pointer-chasing models).
    """

    name: str
    capacity: float
    stream_bw: float
    random_bw: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise MemoryModelError(f"{self.name}: capacity must be > 0")
        if self.stream_bw <= 0 or self.random_bw <= 0:
            raise MemoryModelError(f"{self.name}: bandwidths must be > 0")
        if self.latency < 0:
            raise MemoryModelError(f"{self.name}: negative latency")

    def bandwidth(self, pattern: str) -> float:
        if pattern == AccessPattern.STREAM:
            return self.stream_bw
        if pattern == AccessPattern.RANDOM:
            return self.random_bw
        raise MemoryModelError(f"unknown access pattern {pattern!r}")


class MemoryHierarchy:
    """An ordered stack of cache levels (fastest/smallest first)."""

    #: fraction of a level's capacity over which bandwidth blends into the
    #: next level's (working sets slightly above a cache still partly hit).
    TRANSITION = 0.5

    def __init__(self, levels: Sequence[CacheLevel]):
        if not levels:
            raise MemoryModelError("hierarchy needs at least one level")
        caps = [lv.capacity for lv in levels]
        if any(a >= b for a, b in zip(caps, caps[1:])):
            raise MemoryModelError("levels must have strictly increasing capacity")
        if levels[-1].capacity != float("inf"):
            raise MemoryModelError("last level must have infinite capacity (DRAM)")
        self.levels = tuple(levels)

    # -- queries --------------------------------------------------------------
    def level_for(self, working_set: float) -> CacheLevel:
        """Smallest level whose capacity covers ``working_set``."""
        if working_set < 0:
            raise MemoryModelError(f"negative working set {working_set!r}")
        for lv in self.levels:
            if working_set <= lv.capacity:
                return lv
        raise AssertionError("unreachable: last level is infinite")

    def effective_bandwidth(
        self, working_set: float, pattern: str = AccessPattern.STREAM
    ) -> float:
        """Bandwidth for touching a ``working_set``-byte footprint.

        Within a level: that level's bandwidth.  In the transition band
        just above a level's capacity (up to ``(1+TRANSITION)*capacity``)
        the value interpolates linearly toward the next level, producing
        the kinked-but-continuous curves seen in the paper's Fig. 4(b).
        """
        if working_set < 0:
            raise MemoryModelError(f"negative working set {working_set!r}")
        for i, lv in enumerate(self.levels):
            if working_set <= lv.capacity:
                return lv.bandwidth(pattern)
            upper = lv.capacity * (1.0 + self.TRANSITION)
            if working_set < upper and i + 1 < len(self.levels):
                nxt = self.levels[i + 1]
                frac = (working_set - lv.capacity) / (upper - lv.capacity)
                return (1.0 - frac) * lv.bandwidth(pattern) + frac * nxt.bandwidth(
                    pattern
                )
        return self.levels[-1].bandwidth(pattern)

    def touch_time(
        self,
        nbytes: float,
        working_set: float | None = None,
        pattern: str = AccessPattern.STREAM,
    ) -> float:
        """Seconds to move ``nbytes`` given a resident ``working_set``.

        ``working_set`` defaults to ``nbytes`` (one pass over the data).
        """
        if nbytes < 0:
            raise MemoryModelError(f"negative byte count {nbytes!r}")
        ws = nbytes if working_set is None else working_set
        bw = self.effective_bandwidth(ws, pattern)
        return nbytes / bw

    def names(self) -> list[str]:
        return [lv.name for lv in self.levels]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryHierarchy {'/'.join(self.names())}>"
