"""Node-hardware substrate: memory hierarchy, CPU, interrupts, DMA, PCI."""

from .cpu import CPU
from .dma import DMAEngine
from .interrupts import IMMEDIATE, CoalescePolicy, InterruptController
from .memory import AccessPattern, CacheLevel, MemoryHierarchy
from .pci import (
    PCI_32_33_RATE,
    PCI_64_66_RATE,
    PCIX_133_RATE,
    card_local_bus,
    pci_32_33,
    pci_64_66,
    pcix_133,
)

__all__ = [
    "AccessPattern",
    "CPU",
    "CacheLevel",
    "CoalescePolicy",
    "DMAEngine",
    "IMMEDIATE",
    "InterruptController",
    "MemoryHierarchy",
    "PCI_32_33_RATE",
    "PCI_64_66_RATE",
    "PCIX_133_RATE",
    "card_local_bus",
    "pci_32_33",
    "pci_64_66",
    "pcix_133",
]
