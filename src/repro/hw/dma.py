"""DMA engine model.

Models the descriptor-driven DMA engines that move data between host
memory and I/O cards across a PCI bus.  Two effects matter to the paper:

* **Per-descriptor setup cost** — each DMA transaction pays a fixed
  overhead, so small transfers are inefficient.  This is why the
  receiving INIC waits for a 64 KiB bucket threshold before transferring
  to the host ("the minimum size transferred from the card to host
  memory to ensure efficiency of the DMA operation", Eq. 15), and why
  "the limits on the efficiency of the DMA engines" is named as the
  eventual INIC scaling limit (Section 4.1).

* **Chunking** — long transfers are broken into burst-sized bus
  transactions, which is what lets independent traffic interleave on a
  fair-share bus and lets downstream consumers pipeline with the DMA.
"""

from __future__ import annotations

from typing import Union

from ..errors import DMAError
from ..sim.bus import FCFSBus, FairShareBus
from ..sim.engine import Simulator

__all__ = ["DMAEngine"]

Bus = Union[FCFSBus, FairShareBus]


class DMAEngine:
    """A DMA channel bound to a bus."""

    def __init__(
        self,
        sim: Simulator,
        bus: Bus,
        setup_cost: float = 5e-6,
        burst_size: int = 4096,
        name: str = "dma",
    ):
        if setup_cost < 0:
            raise DMAError("negative DMA setup cost")
        if burst_size < 1:
            raise DMAError("burst size must be >= 1 byte")
        self.sim = sim
        self.bus = bus
        self.setup_cost = float(setup_cost)
        self.burst_size = int(burst_size)
        self.name = name
        # -- statistics ----------------------------------------------------
        self.transfers = 0
        self.bytes_moved = 0.0

    def register_telemetry(self, registry, prefix: str) -> None:
        """Register this DMA channel's instruments under ``prefix``."""
        registry.counter(f"{prefix}.transfers", lambda: self.transfers)
        registry.counter(f"{prefix}.bytes", lambda: self.bytes_moved, unit="B")

    def transfer(self, nbytes: float):
        """Generator: move ``nbytes``; use as ``yield from dma.transfer(n)``.

        Pays one setup cost, then streams the payload over the bus.
        Returns the byte count.

        On a serialized (FCFS) bus the payload is broken into
        ``burst_size`` transactions so independent traffic can
        interleave between bursts.  On a fair-share bus the sharing is
        modelled continuously by the bus itself, so bursting would only
        multiply simulation events without changing any completion time
        — the whole payload goes as one transfer.
        """
        if nbytes <= 0:
            raise DMAError(f"DMA transfer of {nbytes} bytes")
        if self.setup_cost > 0:
            yield self.sim.sleep(self.setup_cost)
        if isinstance(self.bus, FairShareBus):
            yield self.bus.transfer(float(nbytes))
        else:
            remaining = float(nbytes)
            while remaining > 0:
                burst = min(remaining, float(self.burst_size))
                yield self.bus.transfer(burst)
                remaining -= burst
        self.transfers += 1
        self.bytes_moved += nbytes
        return nbytes

    def effective_rate(self, nbytes: float) -> float:
        """Setup-amortized throughput for a transfer of ``nbytes``.

        Useful for analytical models; the simulated rate converges to
        this for uncontended buses.
        """
        if nbytes <= 0:
            raise DMAError(f"DMA transfer of {nbytes} bytes")
        stream_time = nbytes / self.bus.bandwidth
        return nbytes / (self.setup_cost + stream_time)

    def efficiency(self, nbytes: float) -> float:
        """Fraction of raw bus bandwidth achieved at this transfer size."""
        return self.effective_rate(nbytes) / self.bus.bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DMAEngine {self.name!r} on {self.bus.name!r}>"
