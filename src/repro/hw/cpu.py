"""Host CPU model.

The CPU is a single-server resource (the paper's nodes are 1-GHz
uniprocessor Athlons) whose compute tasks are expressed in *seconds of
work*, produced by the application cost models
(:mod:`repro.models.params`).  Two effects the paper depends on are
modelled:

* **Interrupt theft** — interrupt handlers (NIC RX/TX) steal CPU time
  from whatever computation is running.  Delivered interrupts call
  :meth:`CPU.steal`; the backlog inflates the running (or next) task.
  This is the mechanism by which per-packet interrupt load slows the
  Gigabit Ethernet baseline, and its absence is the INIC's headline win
  ("the virtual elimination of interrupts from the communication path",
  Section 4.1).

* **Cache-fit compute rates** — helpers cost a task by bytes touched and
  working-set size through the :class:`~repro.hw.memory.MemoryHierarchy`,
  so partition-fits-in-L2 kinks appear in compute curves.
"""

from __future__ import annotations

from typing import Optional

from ..errors import HardwareError
from ..sim.engine import Simulator
from ..sim.resources import Resource
from .memory import AccessPattern, MemoryHierarchy

__all__ = ["CPU"]


class CPU:
    """A single host processor with a memory hierarchy."""

    def __init__(
        self,
        sim: Simulator,
        hierarchy: MemoryHierarchy,
        clock_hz: float = 1e9,
        flops_per_cycle: float = 1.0,
        interrupt_cost: float = 10e-6,
        name: str = "cpu",
    ):
        if clock_hz <= 0:
            raise HardwareError("clock must be > 0")
        if flops_per_cycle <= 0:
            raise HardwareError("flops_per_cycle must be > 0")
        if interrupt_cost < 0:
            raise HardwareError("negative interrupt cost")
        self.sim = sim
        self.hierarchy = hierarchy
        self.clock_hz = float(clock_hz)
        self.flops_per_cycle = float(flops_per_cycle)
        self.interrupt_cost = float(interrupt_cost)
        self.name = name
        self.core = Resource(sim, capacity=1, name=f"{name}.core")
        self._steal_backlog = 0.0
        # -- statistics ----------------------------------------------------
        self.busy_time = 0.0
        self.interrupt_time = 0.0
        self.tasks_run = 0

    def register_telemetry(self, registry, prefix: str) -> None:
        """Register this CPU's instruments under ``prefix``."""
        registry.busy(f"{prefix}.busy_time", lambda: self.busy_time)
        registry.busy(f"{prefix}.interrupt_time", lambda: self.interrupt_time)
        registry.counter(f"{prefix}.tasks_run", lambda: self.tasks_run)

    # -- interrupt theft ---------------------------------------------------------
    def steal(self, seconds: float) -> None:
        """Charge ``seconds`` of handler time against the CPU.

        The time is added to a backlog consumed by the running or next
        compute task, inflating it.
        """
        if seconds < 0:
            raise HardwareError("negative steal")
        self._steal_backlog += seconds
        self.interrupt_time += seconds

    def charge_interrupt(self, count: int = 1) -> None:
        """Convenience: steal ``count`` interrupt-handler costs."""
        self.steal(count * self.interrupt_cost)

    # -- computing -----------------------------------------------------------------
    def busy(self, seconds: float):
        """Generator: occupy the core for ``seconds`` of work.

        Usage inside a process::

            yield from node.cpu.busy(0.010)

        The actual elapsed time is ``seconds`` plus any interrupt time
        stolen while the task held the core.
        """
        if seconds < 0:
            raise HardwareError(f"negative compute time {seconds!r}")
        req = self.core.request()
        yield req
        try:
            start = self.sim.now
            remaining = seconds + self._consume_backlog()
            while remaining > 0:
                yield self.sim.sleep(remaining)
                # Interrupts may have stolen time while we "ran".
                remaining = self._consume_backlog()
            self.busy_time += self.sim.now - start
            self.tasks_run += 1
        finally:
            self.core.release(req)

    def _consume_backlog(self) -> float:
        stolen, self._steal_backlog = self._steal_backlog, 0.0
        return stolen

    # -- cost helpers ----------------------------------------------------------------
    def flops_time(self, flops: float) -> float:
        """Seconds for a pure-compute task of ``flops`` operations."""
        if flops < 0:
            raise HardwareError("negative flop count")
        return flops / (self.clock_hz * self.flops_per_cycle)

    def memory_time(
        self,
        nbytes: float,
        working_set: Optional[float] = None,
        pattern: str = AccessPattern.STREAM,
    ) -> float:
        """Seconds for a memory-bound task touching ``nbytes``."""
        return self.hierarchy.touch_time(nbytes, working_set, pattern)

    def task_time(
        self,
        flops: float = 0.0,
        nbytes: float = 0.0,
        working_set: Optional[float] = None,
        pattern: str = AccessPattern.STREAM,
    ) -> float:
        """Roofline-style cost: max of compute time and memory time."""
        return max(self.flops_time(flops), self.memory_time(nbytes, working_set, pattern))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CPU {self.name!r} {self.clock_hz / 1e6:g} MHz>"
