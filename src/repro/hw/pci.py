"""PCI bus flavours of the paper's era.

The prototype's weaknesses are explicitly bus-shaped (Section 5):
"a single bus on the card for all data traffic, a 32-bit 33 MHz PCI
bus" — versus the ideal single-chip INIC which assumes "the system PCI
bus would be sufficient (64-bit 66 MHz or, in the future, PCI-X)".

Factory helpers build appropriately parameterized buses:

=================  ===========  =====================================
bus                raw rate     used for
=================  ===========  =====================================
PCI 32-bit/33MHz   132 MB/s     host system bus of every node; the
                                ACEII card's single shared local bus
PCI 64-bit/66MHz   528 MB/s     ideal INIC's assumed system bus
PCI-X 133MHz       1064 MB/s    "in the future" (ablation studies)
=================  ===========  =====================================

Raw rates are decimal MB/s as PCI is conventionally quoted.  Real PCI
achieves roughly 80-90% of raw on long bursts; that derating is applied
by callers via ``efficiency`` (the paper's own models use "a
conservative 80%-90% of measured results", Section 4).

Telemetry: every bus built here inherits ``register_telemetry`` from
its :mod:`repro.sim.bus` class; the cluster instrumenter names the
node's system bus ``node{r}.pci``.  On INIC nodes the datapath crosses
the *card's* host-side bus instead, so ``node{r}.pci`` reads that bus
(see :mod:`repro.telemetry.instruments`).
"""

from __future__ import annotations

from ..sim.bus import FCFSBus, FairShareBus
from ..sim.engine import Simulator
from ..units import mb_per_s

__all__ = [
    "PCI_32_33_RATE",
    "PCI_64_66_RATE",
    "PCIX_133_RATE",
    "pci_32_33",
    "pci_64_66",
    "pcix_133",
    "card_local_bus",
]

#: raw burst rates in bytes/s
PCI_32_33_RATE: float = mb_per_s(132.0)
PCI_64_66_RATE: float = mb_per_s(528.0)
PCIX_133_RATE: float = mb_per_s(1064.0)

#: typical PCI arbitration/latency per transaction (address phase, turnaround)
DEFAULT_ARBITRATION: float = 0.3e-6


def _make(
    sim: Simulator,
    raw_rate: float,
    efficiency: float,
    shared: bool,
    name: str,
    arbitration: float,
):
    if not 0 < efficiency <= 1:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
    cls = FCFSBus if shared else FairShareBus
    return cls(
        sim,
        bandwidth=raw_rate * efficiency,
        arbitration_latency=arbitration,
        name=name,
    )


def pci_32_33(
    sim: Simulator,
    efficiency: float = 0.85,
    shared: bool = False,
    name: str = "pci32/33",
    arbitration: float = DEFAULT_ARBITRATION,
):
    """The node's 32-bit 33 MHz system PCI bus (fair-share by default)."""
    return _make(sim, PCI_32_33_RATE, efficiency, shared, name, arbitration)


def pci_64_66(
    sim: Simulator,
    efficiency: float = 0.85,
    shared: bool = False,
    name: str = "pci64/66",
    arbitration: float = DEFAULT_ARBITRATION,
):
    """The ideal INIC's assumed 64-bit 66 MHz system bus."""
    return _make(sim, PCI_64_66_RATE, efficiency, shared, name, arbitration)


def pcix_133(
    sim: Simulator,
    efficiency: float = 0.85,
    shared: bool = False,
    name: str = "pcix133",
    arbitration: float = DEFAULT_ARBITRATION,
):
    """PCI-X, the paper's "in the future" bus (for ablations)."""
    return _make(sim, PCIX_133_RATE, efficiency, shared, name, arbitration)


def card_local_bus(
    sim: Simulator,
    efficiency: float = 1.0,
    name: str = "acex-bus",
    arbitration: float = DEFAULT_ARBITRATION,
) -> FCFSBus:
    """The ACEII card's single 132 MB/s local bus.

    Serialized (FCFS): the paper calls out that *all* card traffic —
    host DMA and Gigabit Ethernet PMC traffic — crosses this one bus,
    which is the prototype's main bottleneck (Section 6: "a single
    132 MB/s bus used to access both the Gigabit Ethernet and host
    memory").
    """
    return FCFSBus(
        sim,
        bandwidth=PCI_32_33_RATE * efficiency,
        arbitration_latency=arbitration,
        name=name,
    )
