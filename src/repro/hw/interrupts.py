"""Interrupt controller with coalescing (interrupt mitigation).

Section 4.1 of the paper: "high speed network interfaces typically use
some form of interrupt mitigation — based on a time-out or number of
messages received.  This mechanism is necessary because modern systems
are incapable of handling an interrupt per packet at the full data rate
of Gigabit Ethernet, but it interacts poorly with TCP slow-start for
short messages."

This module models exactly that mechanism.  A device raises interrupt
*causes*; the controller delivers an actual CPU interrupt either

* immediately, if coalescing is disabled, or
* when ``max_frames`` causes have accumulated, or
* when ``delay`` seconds have passed since the first undelivered cause

whichever comes first — the classic NIC "rx-usecs / rx-frames" pair.
Each delivered interrupt steals ``cpu.interrupt_cost`` seconds of host
CPU time (handler + context switch), which is how per-packet interrupt
load degrades the standard-NIC baselines, and why the INIC's elimination
of interrupts (Section 4.1) wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim.engine import Simulator

__all__ = ["CoalescePolicy", "InterruptController"]


@dataclass(frozen=True)
class CoalescePolicy:
    """Interrupt-mitigation parameters.

    ``delay``
        seconds to wait after the first pending cause before firing
        (0 disables the timer: fire immediately).
    ``max_frames``
        fire as soon as this many causes are pending (1 disables
        coalescing entirely).
    """

    delay: float = 0.0
    max_frames: int = 1

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("negative coalescing delay")
        if self.max_frames < 1:
            raise ValueError("max_frames must be >= 1")

    @property
    def disabled(self) -> bool:
        return self.delay == 0.0 and self.max_frames == 1


#: no mitigation: one interrupt per cause
IMMEDIATE = CoalescePolicy(delay=0.0, max_frames=1)


class InterruptController:
    """Per-device interrupt delivery with coalescing.

    The ``handler`` is called as ``handler(n_causes)`` when an interrupt
    is delivered; typical handlers drain a NIC RX ring and charge the CPU
    for the handler cost.
    """

    def __init__(
        self,
        sim: Simulator,
        policy: CoalescePolicy = IMMEDIATE,
        handler: Optional[Callable[[int], None]] = None,
        name: str = "irq",
    ):
        self.sim = sim
        self.policy = policy
        self.handler = handler
        self.name = name
        self._pending = 0
        #: pending coalesce timer (``call_after`` handle), if armed
        self._timer: Optional[list] = None
        # -- statistics ----------------------------------------------------
        self.causes_raised = 0
        self.interrupts_delivered = 0

    @property
    def pending(self) -> int:
        return self._pending

    def register_telemetry(self, registry, prefix: str) -> None:
        """Register this controller's instruments under ``prefix``."""
        registry.counter(f"{prefix}.causes", lambda: self.causes_raised)
        registry.counter(f"{prefix}.delivered", lambda: self.interrupts_delivered)
        registry.gauge(f"{prefix}.coalescing_ratio", self.coalescing_ratio)

    def raise_irq(self, causes: int = 1) -> None:
        """Record ``causes`` new interrupt causes from the device."""
        if causes < 1:
            raise ValueError("raise_irq needs at least one cause")
        first_pending = self._pending == 0
        self._pending += causes
        self.causes_raised += causes

        if self.policy.disabled or self._pending >= self.policy.max_frames:
            self._deliver()
            return
        if first_pending:
            self._arm_timer()

    def _arm_timer(self) -> None:
        self._timer = self.sim.call_after(self.policy.delay, self._fire_timer)

    def _fire_timer(self) -> None:
        self._timer = None
        if self._pending > 0:
            self._deliver()

    def _deliver(self) -> None:
        n, self._pending = self._pending, 0
        timer = self._timer
        if timer is not None:
            # Threshold delivery beat the coalesce timer: withdraw it in
            # O(1) instead of letting a dead timer fire later.
            self._timer = None
            self.sim.cancel_callback(timer)
        self.interrupts_delivered += 1
        if self.handler is not None:
            self.handler(n)

    def coalescing_ratio(self) -> float:
        """Average causes per delivered interrupt (1.0 = no mitigation)."""
        if self.interrupts_delivered == 0:
            return 0.0
        return self.causes_raised / self.interrupts_delivered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<InterruptController {self.name!r} pending={self._pending} "
            f"delivered={self.interrupts_delivered}>"
        )
