"""``repro.api`` — the public facade in one import.

Everything an experiment script needs::

    from repro.api import Experiment, ACEII_PROTOTYPE, FaultSpec

    session = (
        Experiment()
        .nodes(8)
        .card(ACEII_PROTOTYPE)
        .telemetry(True)
        .build()
    )
    # ... run an application against session.cluster / session.manager ...
    print(session.report())
    session.export_trace("fig4b.trace.json")

Scenario logic is authored as coroutine processes — register them on
the builder (``Experiment().process(name, fn)``), or spawn them on a
built session (``session.spawn(fn, ...)`` / ``session.env``); see
``docs/processes.md``.  The pre-facade ``build_acc``/``build_beowulf``
wrappers have been removed after their deprecation cycle.
"""

from .cluster.builder import ClusterSpec, NodeHardware, athlon_node
from .core.api import Experiment, Session
from .sim.process import Environment, drive
from .faults import ComponentFaultSpec, FaultSpec, robustness_counters
from .faults.campaign import (
    CampaignSpec,
    campaign_fault_spec,
    fabric_components,
)
from .inic.card import ACEII_PROTOTYPE, CardSpec, IDEAL_INIC
from .net.fabric import FAST_ETHERNET, GIGABIT_ETHERNET, NetworkTechnology
from .protocols.tcp import TCPConfig

__all__ = [
    "ACEII_PROTOTYPE",
    "CampaignSpec",
    "CardSpec",
    "ClusterSpec",
    "ComponentFaultSpec",
    "Environment",
    "Experiment",
    "FAST_ETHERNET",
    "FaultSpec",
    "GIGABIT_ETHERNET",
    "IDEAL_INIC",
    "NetworkTechnology",
    "NodeHardware",
    "Session",
    "TCPConfig",
    "athlon_node",
    "campaign_fault_spec",
    "drive",
    "fabric_components",
    "robustness_counters",
]
