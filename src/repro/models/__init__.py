"""Analytical models (Section 4) and calibrated parameters."""

from .params import (
    DEFAULT_PARAMS,
    MachineParams,
    bucket_sort_time,
    count_sort_time,
    fft_compute_time,
    fft_row_flops,
    interleave_time,
    local_transpose_time,
)

__all__ = [
    "DEFAULT_PARAMS",
    "MachineParams",
    "bucket_sort_time",
    "count_sort_time",
    "fft_compute_time",
    "fft_row_flops",
    "interleave_time",
    "local_transpose_time",
]

from .fft_model import (
    FFTModelPoint,
    fft_compute_total,
    inic_fft_series,
    inic_fft_time,
    inic_transpose_time,
    partition_bytes,
    serial_fft_time,
)
from .gige_model import fe_fft_time, gige_fft_time, gige_sort_time, tcp_alltoall_time
from .prototype import prototype_exchange_time, prototype_fft_time, prototype_sort_time
from .sort_model import (
    SortModelPoint,
    inic_sort_time,
    receive_buckets,
    serial_sort_time,
    sort_component_series,
    sort_partition_bytes,
    t_inic,
)
from .speedup import Series, crossover_point, speedup_series

__all__ += [
    "FFTModelPoint",
    "Series",
    "SortModelPoint",
    "crossover_point",
    "fe_fft_time",
    "fft_compute_total",
    "gige_fft_time",
    "gige_sort_time",
    "inic_fft_series",
    "inic_fft_time",
    "inic_sort_time",
    "inic_transpose_time",
    "partition_bytes",
    "prototype_exchange_time",
    "prototype_fft_time",
    "prototype_sort_time",
    "receive_buckets",
    "serial_fft_time",
    "serial_sort_time",
    "sort_component_series",
    "sort_partition_bytes",
    "speedup_series",
    "t_inic",
    "tcp_alltoall_time",
]
