"""Every calibrated constant in one place, with provenance.

Three provenance classes, marked on each field:

* ``[paper]``     — a number printed in the paper (Eqs. 5-17, Section 5).
* ``[era]``       — typical 2001 hardware (1 GHz Athlon, PC133, 32/33 PCI),
                    from contemporary datasheets/folklore.
* ``[calibrated]``— chosen so the *shapes* of Figures 4, 5 and 8 come out
                    (who wins, rough factors, crossovers); documented in
                    EXPERIMENTS.md.

The DES gets most hardware numbers from :mod:`repro.cluster.builder` and
:mod:`repro.inic.card`; this module centralizes the application cost
models (host compute rates) and the Section-4 analytical-model rates so
both the analytic and simulated reproductions draw from one source.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.memory import AccessPattern, MemoryHierarchy
from ..units import KiB, MiB, mib_per_s

__all__ = [
    "MachineParams",
    "DEFAULT_PARAMS",
    "fft_row_flops",
    "fft_compute_time",
    "bucket_sort_time",
    "count_sort_time",
    "local_transpose_time",
    "interleave_time",
]


@dataclass(frozen=True)
class MachineParams:
    """The knobs shared by analytic models and DES cost functions."""

    # --- Section 4 model rates -------------------------------------------------
    #: [paper] Eq. (6)/(9): host <-> card, bytes/s ("80 x 1024 x 1024")
    host_card_rate: float = mib_per_s(80)
    #: [paper] Eq. (7)/(8): card <-> network, bytes/s ("90 x 1024 x 1024")
    card_net_rate: float = mib_per_s(90)
    #: [paper] Section 4.2: INIC protocol packet size, bytes
    inic_packet: int = 1024
    #: [paper] Eq. (15): minimum card->host DMA granule, bytes ("64 KB")
    dma_threshold: int = 64 * KiB
    #: [paper] element sizes: complex double = 16 B, int = 4 B
    complex_bytes: int = 16
    int_bytes: int = 4

    # --- host compute rates -----------------------------------------------------
    #: [era] node clock (1 GHz Athlon, Section 5)
    clock_hz: float = 1e9
    #: [calibrated] sustained FFT rate when the panel fits the named level.
    #: FFTW on a 1 GHz Athlon sustained ~300-500 Mflop/s depending on fit.
    fft_flops_rate_l1: float = 550e6
    fft_flops_rate_l2: float = 430e6
    fft_flops_rate_dram: float = 230e6
    #: [calibrated] count-sort cost (Agarwal-style radix/count, Section 3.2):
    #: cycles per key when buckets fit cache.  45 cyc/key at 1 GHz puts the
    #: serial count sort of ~50 M keys at ~2.3 s — the Fig. 5(a) scale.
    count_sort_cycles_per_key: float = 45.0
    #: [calibrated] penalty multiplier when a bucket misses cache
    count_sort_dram_penalty: float = 2.5
    #: [calibrated] bucket-sort bytes moved per key per pass (read key +
    #: random write into bin + amortized bin-pointer traffic); 10 B/key
    #: puts the serial bucket sort of ~50 M keys "over 5 seconds"
    #: (Section 4.2)
    bucket_sort_bytes_per_key: float = 10.0
    #: [calibrated] Section 6: refining the card's 16-way pre-split into N
    #: buckets is cheaper than a cold 16xN-way host split ("Surprisingly,
    #: this can provide higher performance") — fewer live bins per pass.
    host_phase2_factor: float = 0.7

    # --- baseline network model (for the analytic Fig. 4/5 curves) ---------------
    #: [calibrated] effective GigE/TCP bulk payload bandwidth, bytes/s
    #: (large flows through the 32/33 PCI + TCP stack plateau well below
    #: line rate in 2001 practice)
    gige_tcp_bulk_rate: float = 36e6
    #: [calibrated] per-message overhead of TCP on GigE, seconds (syscall +
    #: slow-start restart + interrupt-mitigation delay on short flows);
    #: cross-checked against the packet-level DES baseline (EXPERIMENTS.md)
    gige_tcp_message_overhead: float = 450e-6
    #: [calibrated] Fast Ethernet effective payload bandwidth, bytes/s
    fe_tcp_bulk_rate: float = 11.2e6
    #: [calibrated] per-message overhead on Fast Ethernet, seconds
    fe_tcp_message_overhead: float = 250e-6

    # --- prototype-INIC model (Section 6 adjustments) ------------------------------
    #: [paper] the ACEII's single bus, bytes/s ("132 MB/s"), derated [era]
    aceii_bus_rate: float = 132e6 * 0.85
    #: [paper] prototype send+receive each cross the card bus twice
    aceii_crossings_per_byte: int = 2
    #: [paper] prototype card bins into at most 16 buckets (Section 6)
    aceii_max_buckets: int = 16

    # --- problem-size defaults matching the figures ----------------------------------
    #: [calibrated] Fig. 5(a) partition axis tops out near 200,000 KB at
    #: P=1, so the total sort is ~48 * 2^20 keys (192 MiB of data).
    sort_total_keys: int = 48 * 2**20
    #: [paper] minimum cache-fit bucket count for >= 2^21 keys (Section 3.2.1)
    min_cache_buckets: int = 128
    #: [calibrated] target keys per cache bucket (fits 256 KiB L2 as ~2
    #: passes' working set)
    keys_per_cache_bucket: int = 24 * 1024


#: the default parameter set used across benches and examples
DEFAULT_PARAMS = MachineParams()


# ---------------------------------------------------------------------------
# Host compute-cost functions (used by the DES applications)
# ---------------------------------------------------------------------------
def fft_row_flops(n: int) -> float:
    """Classic 5 n log2 n flop count for one complex n-point FFT row."""
    if n < 2:
        return 0.0
    import math

    return 5.0 * n * math.log2(n)


def _fft_rate_for(params: MachineParams, hierarchy: MemoryHierarchy, ws: float) -> float:
    level = hierarchy.level_for(ws).name
    return {
        "L1": params.fft_flops_rate_l1,
        "L2": params.fft_flops_rate_l2,
    }.get(level, params.fft_flops_rate_dram)


def fft_compute_time(
    params: MachineParams,
    hierarchy: MemoryHierarchy,
    rows_local: int,
    n: int,
) -> float:
    """Seconds for one pass of row FFTs over a local (rows_local x n) panel.

    The sustained flop rate depends on whether the panel fits a cache
    level — the source of the compute-curve kinks in Fig. 4(b).
    """
    ws = rows_local * n * params.complex_bytes
    rate = _fft_rate_for(params, hierarchy, ws)
    return rows_local * fft_row_flops(n) / rate


def bucket_sort_time(
    params: MachineParams,
    hierarchy: MemoryHierarchy,
    n_keys: int,
    n_buckets: int,
) -> float:
    """Seconds to bin ``n_keys`` into ``n_buckets`` on the host.

    Random-write bound: each key is read sequentially and written to a
    bin whose next slot is effectively a random DRAM location once the
    bin working set exceeds cache.
    """
    if n_keys == 0:
        return 0.0
    nbytes = params.bucket_sort_bytes_per_key * n_keys
    ws = n_keys * params.int_bytes
    # Bin pointers/streams thrash caches once keys overflow L2.
    pattern = (
        AccessPattern.STREAM
        if ws <= hierarchy.levels[min(1, len(hierarchy.levels) - 1)].capacity
        else AccessPattern.RANDOM
    )
    return hierarchy.touch_time(nbytes, working_set=ws, pattern=pattern)


def count_sort_time(
    params: MachineParams,
    hierarchy: MemoryHierarchy,
    n_keys: int,
    bucket_keys: int | None = None,
) -> float:
    """Seconds to count-sort ``n_keys`` organized in cache-fit buckets.

    ``bucket_keys``: keys per bucket; buckets larger than L2 pay the
    DRAM penalty (the paper's reason for >= 128 buckets at 2^21 keys).
    """
    if n_keys == 0:
        return 0.0
    base = n_keys * params.count_sort_cycles_per_key / params.clock_hz
    if bucket_keys is None:
        return base
    l2 = hierarchy.levels[min(1, len(hierarchy.levels) - 1)].capacity
    if bucket_keys * params.int_bytes > l2:
        return base * params.count_sort_dram_penalty
    return base


#: [calibrated] FFTW-style transposes are cache-blocked, so the strided
#: side runs near streaming bandwidth with a blocking penalty.
_TRANSPOSE_BLOCKING_EFFICIENCY = 0.65


def local_transpose_time(
    params: MachineParams, hierarchy: MemoryHierarchy, nbytes: int
) -> float:
    """Seconds for the host-side local block transpose (baseline FFT):
    one read + one write over the panel, cache-blocked."""
    bw = hierarchy.effective_bandwidth(nbytes, AccessPattern.STREAM)
    return 2 * nbytes / (bw * _TRANSPOSE_BLOCKING_EFFICIENCY)


def interleave_time(
    params: MachineParams, hierarchy: MemoryHierarchy, nbytes: int
) -> float:
    """Seconds for the host-side receive interleave (baseline FFT)."""
    return hierarchy.touch_time(
        2 * nbytes, working_set=nbytes, pattern=AccessPattern.STREAM
    )
