"""The paper's FFT analytical model — Equations (3) through (10).

Implemented exactly as printed, term by term, with the paper's own
binary-unit rates (``80 x 1024 x 1024`` bytes/s etc.) supplied from
:class:`~repro.models.params.MachineParams`.  Used to regenerate
Figure 4(a) (speedups) and Figure 4(b) (transpose decomposition).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ApplicationError
from ..hw.memory import MemoryHierarchy
from .params import (
    DEFAULT_PARAMS,
    MachineParams,
    fft_compute_time,
    interleave_time,
    local_transpose_time,
)

__all__ = [
    "partition_bytes",
    "t_dtc",
    "t_dtg",
    "t_dfg",
    "t_dth",
    "inic_transpose_time",
    "fft_compute_total",
    "inic_fft_time",
    "serial_fft_time",
    "FFTModelPoint",
    "inic_fft_series",
]


def partition_bytes(rows: int, p: int, params: MachineParams = DEFAULT_PARAMS) -> float:
    """Eq. (5): S = rows^2 * 16 / P."""
    if rows < 1 or p < 1:
        raise ApplicationError("rows and P must be positive")
    return rows * rows * params.complex_bytes / p


def t_dtc(s: float, p: int, params: MachineParams = DEFAULT_PARAMS) -> float:
    """Eq. (6): host memory -> FPGA memory pipeline fill, (S/P)/80MiB."""
    return (s / p) / params.host_card_rate


def t_dtg(s: float, p: int, params: MachineParams = DEFAULT_PARAMS) -> float:
    """Eq. (7): FPGA memory -> network pipeline fill, (S/P)/90MiB."""
    return (s / p) / params.card_net_rate


def t_dfg(s: float, p: int, params: MachineParams = DEFAULT_PARAMS) -> float:
    """Eq. (8): receive from network, ((P-1)*S/P)/90MiB."""
    return ((p - 1) * s / p) / params.card_net_rate


def t_dth(s: float, params: MachineParams = DEFAULT_PARAMS) -> float:
    """Eq. (9): final copy to host, S/80MiB."""
    return s / params.host_card_rate


def inic_transpose_time(
    rows: int, p: int, params: MachineParams = DEFAULT_PARAMS
) -> float:
    """Eq. (10): both transposes, 2 x (Tdtc + Tdtg + Tdfg + Tdth)."""
    s = partition_bytes(rows, p, params)
    return 2.0 * (
        t_dtc(s, p, params) + t_dtg(s, p, params) + t_dfg(s, p, params) + t_dth(s, params)
    )


def fft_compute_total(
    rows: int,
    p: int,
    hierarchy: MemoryHierarchy,
    params: MachineParams = DEFAULT_PARAMS,
) -> float:
    """Eq. (4): 2 x T1D-FFT(rows) x rows / P, with the cache-fit rate."""
    return 2.0 * fft_compute_time(params, hierarchy, rows // p, rows)


def inic_fft_time(
    rows: int,
    p: int,
    hierarchy: MemoryHierarchy,
    params: MachineParams = DEFAULT_PARAMS,
) -> float:
    """Eq. (3): T = Tcompute + Ttrans for the ideal INIC."""
    return fft_compute_total(rows, p, hierarchy, params) + inic_transpose_time(
        rows, p, params
    )


def serial_fft_time(
    rows: int,
    hierarchy: MemoryHierarchy,
    params: MachineParams = DEFAULT_PARAMS,
) -> float:
    """Single-node reference: two row-FFT passes plus two in-memory
    transposes (the speedup denominator for every curve)."""
    nbytes = rows * rows * params.complex_bytes
    return fft_compute_total(rows, 1, hierarchy, params) + 2.0 * (
        local_transpose_time(params, hierarchy, nbytes)
        + interleave_time(params, hierarchy, nbytes)
    )


@dataclass(frozen=True)
class FFTModelPoint:
    """One (P) point of the Fig. 4(b) decomposition."""

    p: int
    partition_kib: float
    compute_time: float
    inic_transpose_time: float


def inic_fft_series(
    rows: int,
    procs: list[int],
    hierarchy: MemoryHierarchy,
    params: MachineParams = DEFAULT_PARAMS,
) -> list[FFTModelPoint]:
    """The Fig. 4(b) series for one matrix size."""
    out = []
    for p in procs:
        if rows % p != 0:
            raise ApplicationError(f"{rows} rows do not distribute over {p}")
        s = partition_bytes(rows, p, params)
        out.append(
            FFTModelPoint(
                p=p,
                partition_kib=s / 1024.0,
                compute_time=fft_compute_total(rows, p, hierarchy, params),
                inic_transpose_time=inic_transpose_time(rows, p, params),
            )
        )
    return out
