"""Speedup/series helpers shared by models and benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ApplicationError

__all__ = ["Series", "speedup_series", "crossover_point"]


@dataclass
class Series:
    """A named (x, y) curve, the unit of every figure reproduction."""

    name: str
    x: list[float]
    y: list[float]
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ApplicationError(
                f"series {self.name!r}: {len(self.x)} x vs {len(self.y)} y"
            )

    def at(self, x_value: float) -> float:
        """The y value at an exact x (figures are sampled, not fitted)."""
        for xi, yi in zip(self.x, self.y):
            if xi == x_value:
                return yi
        raise ApplicationError(f"series {self.name!r} has no point at x={x_value}")

    def scaled(self, factor: float, name: str | None = None) -> "Series":
        return Series(name or self.name, list(self.x), [v * factor for v in self.y])


def speedup_series(
    name: str, procs: Sequence[int], times: Sequence[float], t_serial: float
) -> Series:
    """Speedup(P) = T_serial / T(P)."""
    if t_serial <= 0:
        raise ApplicationError("serial time must be positive")
    if any(t <= 0 for t in times):
        raise ApplicationError("parallel times must be positive")
    return Series(name, [float(p) for p in procs], [t_serial / t for t in times])


def crossover_point(a: Series, b: Series) -> float | None:
    """Smallest shared x where ``a`` first meets or beats ``b``
    (None if it never does).  Used for 'needs >= 8 nodes to beat
    serial'-style shape assertions."""
    shared = [x for x in a.x if x in b.x]
    for x in sorted(shared):
        if a.at(x) >= b.at(x):
            return x
    return None
