"""Prototype-INIC analytical adjustments (Section 6).

The Section-4 model assumes the ideal card; the ACEII prototype differs
in two ways the paper names explicitly:

* "the prototype hardware does introduce a bottleneck in the form of a
  single 132 MB/s bus used to access both the Gigabit Ethernet and host
  memory" — every payload byte crosses that one bus **twice per
  direction** (host<->card memory, card memory<->MAC), and send and
  receive traffic contend with each other;
* "the Xilinx 4085XLA devices we have are not dense enough to perform
  the full bucket sort on the INIC.  Consequently, the bucket sort must
  be performed in two phases" — the host pays a (discounted) phase-2
  bucket refine.

These closed forms cross-check the DES prototype runs of Figure 8.
"""

from __future__ import annotations

from ..errors import ApplicationError
from ..hw.memory import MemoryHierarchy
from .params import DEFAULT_PARAMS, MachineParams, bucket_sort_time, count_sort_time
from .fft_model import fft_compute_total, partition_bytes
from .sort_model import receive_buckets, sort_partition_bytes

__all__ = [
    "prototype_exchange_time",
    "prototype_fft_time",
    "prototype_sort_time",
]


def prototype_exchange_time(
    s: float, p: int, params: MachineParams = DEFAULT_PARAMS
) -> float:
    """Per-node wall time for one all-to-all of partition ``s`` through
    the shared card bus.

    Outbound, every byte crosses the bus twice (host->card, card->MAC);
    inbound likewise.  The self block skips the MAC but still crosses
    twice (host->card->host).  All crossings serialize on the one bus,
    so the bus moves ~4S bytes per exchange per node.
    """
    if p < 1:
        raise ApplicationError("P must be >= 1")
    remote = s * (p - 1) / p
    self_block = s / p
    crossings = 2 * remote + 2 * remote + 2 * self_block
    return crossings / params.aceii_bus_rate


def prototype_fft_time(
    rows: int,
    p: int,
    hierarchy: MemoryHierarchy,
    params: MachineParams = DEFAULT_PARAMS,
) -> float:
    """Prototype INIC FFT: Eq. (3) with bus-bound transposes."""
    s = partition_bytes(rows, p, params)
    return fft_compute_total(rows, p, hierarchy, params) + 2.0 * prototype_exchange_time(
        s, p, params
    )


def prototype_sort_time(
    e_init: int,
    p: int,
    hierarchy: MemoryHierarchy,
    params: MachineParams = DEFAULT_PARAMS,
) -> float:
    """Prototype INIC sort: bus-bound redistribution + host phase-2 of
    the 16-way card pre-split + count sort."""
    per_node = e_init // p
    s = sort_partition_bytes(e_init, p, params)
    n = receive_buckets(e_init, p, params)
    comm = prototype_exchange_time(s, p, params)
    phase2 = (
        params.host_phase2_factor
        * bucket_sort_time(params, hierarchy, per_node, n)
        if n > params.aceii_max_buckets
        else 0.0
    )
    t_count = count_sort_time(
        params, hierarchy, per_node, bucket_keys=max(1, per_node // n)
    )
    return comm + phase2 + t_count
