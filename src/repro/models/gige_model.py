"""Closed-form baseline (TCP over Gigabit / Fast Ethernet) time model.

The DES is the authoritative baseline; this closed form exists so the
*analytic* Figure-4/5 comparisons (which the paper draws entirely from
models) have a matching analytic opponent, and so calibration can
cross-check the DES.  Structure:

    per-node all-to-all time = payload / effective_rate
                             + (P-1) x per_message_overhead

where the per-message overhead term captures everything the paper
blames on TCP for small partitions: slow-start restart, interrupt
mitigation latency, per-packet host costs.  Because the overhead term
scales with P while payload shrinks as 1/P, communication time stops
falling with partition size — "the line representing partition size has
a steeper slope than the one representing communication time"
(Section 4.1).
"""

from __future__ import annotations

from ..errors import ApplicationError
from ..hw.memory import MemoryHierarchy
from .params import (
    DEFAULT_PARAMS,
    MachineParams,
    bucket_sort_time,
    count_sort_time,
    fft_compute_time,
    interleave_time,
    local_transpose_time,
)

__all__ = [
    "tcp_alltoall_time",
    "gige_fft_time",
    "gige_sort_time",
    "fe_fft_time",
]


def tcp_alltoall_time(
    partition_bytes: float,
    p: int,
    rate: float,
    per_message_overhead: float,
) -> float:
    """Per-node wall time of a balanced all-to-all of one partition."""
    if p < 1:
        raise ApplicationError("P must be >= 1")
    if p == 1:
        return 0.0
    payload = partition_bytes * (p - 1) / p
    return payload / rate + (p - 1) * per_message_overhead


def _fft_host_transpose(
    rows: int, p: int, hierarchy: MemoryHierarchy, params: MachineParams
) -> float:
    panel_bytes = rows * rows * params.complex_bytes / p
    return local_transpose_time(params, hierarchy, panel_bytes) + interleave_time(
        params, hierarchy, panel_bytes
    )


def _tcp_fft_time(
    rows: int,
    p: int,
    hierarchy: MemoryHierarchy,
    params: MachineParams,
    rate: float,
    overhead: float,
) -> float:
    compute = 2.0 * fft_compute_time(params, hierarchy, rows // p, rows)
    s = rows * rows * params.complex_bytes / p
    per_transpose = tcp_alltoall_time(s, p, rate, overhead) + _fft_host_transpose(
        rows, p, hierarchy, params
    )
    return compute + 2.0 * per_transpose


def gige_fft_time(
    rows: int,
    p: int,
    hierarchy: MemoryHierarchy,
    params: MachineParams = DEFAULT_PARAMS,
) -> float:
    """FFTW over MPI/TCP/GigE, per the calibrated closed form."""
    return _tcp_fft_time(
        rows,
        p,
        hierarchy,
        params,
        params.gige_tcp_bulk_rate,
        params.gige_tcp_message_overhead,
    )


def fe_fft_time(
    rows: int,
    p: int,
    hierarchy: MemoryHierarchy,
    params: MachineParams = DEFAULT_PARAMS,
) -> float:
    """FFTW over MPI/TCP/Fast-Ethernet."""
    return _tcp_fft_time(
        rows,
        p,
        hierarchy,
        params,
        params.fe_tcp_bulk_rate,
        params.fe_tcp_message_overhead,
    )


def gige_sort_time(
    e_init: int,
    p: int,
    hierarchy: MemoryHierarchy,
    params: MachineParams = DEFAULT_PARAMS,
) -> float:
    """Parallel sort over TCP/GigE: both host bucket phases + comm +
    count sort (the serialized decomposition of Fig. 5(a))."""
    from .sort_model import receive_buckets, sort_partition_bytes

    per_node = e_init // p
    n = receive_buckets(e_init, p, params)
    s = sort_partition_bytes(e_init, p, params)
    comm = tcp_alltoall_time(
        s, p, params.gige_tcp_bulk_rate, params.gige_tcp_message_overhead
    )
    return (
        bucket_sort_time(params, hierarchy, per_node, p)
        + comm
        + bucket_sort_time(params, hierarchy, per_node, n)
        + count_sort_time(params, hierarchy, per_node, bucket_keys=max(1, per_node // n))
    )
