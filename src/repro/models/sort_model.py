"""The paper's integer-sort analytical model — Equations (11)-(17).

Implemented exactly as printed.  Note the structure of Eqs. (13)-(15):
the *streaming* of the partition is assumed fully pipelined, so TINIC
consists only of the pipeline-fill latencies (a packet per bin before
transmits can begin, a 64 KiB DMA threshold per receive bucket) plus
the final copy of the partition to the host (Eq. 16).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ApplicationError
from ..hw.memory import MemoryHierarchy
from .params import (
    DEFAULT_PARAMS,
    MachineParams,
    bucket_sort_time,
    count_sort_time,
)

__all__ = [
    "sort_partition_bytes",
    "sort_t_dtc",
    "sort_t_dtg",
    "sort_t_dfg",
    "sort_t_dth",
    "t_inic",
    "inic_sort_time",
    "serial_sort_time",
    "receive_buckets",
    "SortModelPoint",
    "sort_component_series",
]


def sort_partition_bytes(
    e_init: int, p: int, params: MachineParams = DEFAULT_PARAMS
) -> float:
    """Eq. (12): S = 4 * E_init / P."""
    if e_init < 0 or p < 1:
        raise ApplicationError("bad sort model arguments")
    return params.int_bytes * e_init / p


def sort_t_dtc(p: int, params: MachineParams = DEFAULT_PARAMS) -> float:
    """Eq. (13): worst-case bin fill before transmits begin,
    (P x 1024)/80MiB."""
    return p * params.inic_packet / params.host_card_rate


def sort_t_dtg(p: int, params: MachineParams = DEFAULT_PARAMS) -> float:
    """Eq. (14): (P x 1024)/90MiB."""
    return p * params.inic_packet / params.card_net_rate


def sort_t_dfg(n_buckets: int, params: MachineParams = DEFAULT_PARAMS) -> float:
    """Eq. (15): (N x 65536)/90MiB — N receive buckets must pass the
    64 KiB DMA threshold before any transfer is guaranteed."""
    return n_buckets * params.dma_threshold / params.card_net_rate


def sort_t_dth(s: float, params: MachineParams = DEFAULT_PARAMS) -> float:
    """Eq. (16): S/80MiB."""
    return s / params.host_card_rate


def receive_buckets(
    e_init: int, p: int, params: MachineParams = DEFAULT_PARAMS
) -> int:
    """N: cache-fit bucket count on the receive side (Section 3.2.1)."""
    from ..apps.sort.bucketsort import cache_bucket_count

    per_node = e_init // p
    return cache_bucket_count(
        per_node, params.keys_per_cache_bucket, params.min_cache_buckets
    )


def t_inic(
    e_init: int, p: int, params: MachineParams = DEFAULT_PARAMS
) -> float:
    """Eq. (17): TINIC = Tdtc + Tdtg + Tdfg + Tdth."""
    s = sort_partition_bytes(e_init, p, params)
    n = receive_buckets(e_init, p, params)
    return (
        sort_t_dtc(p, params)
        + sort_t_dtg(p, params)
        + sort_t_dfg(n, params)
        + sort_t_dth(s, params)
    )


def inic_sort_time(
    e_init: int,
    p: int,
    hierarchy: MemoryHierarchy,
    params: MachineParams = DEFAULT_PARAMS,
) -> float:
    """Eq. (11): T = Tcountsort + TINIC."""
    per_node = e_init // p
    n = receive_buckets(e_init, p, params)
    t_count = count_sort_time(
        params, hierarchy, per_node, bucket_keys=max(1, per_node // n)
    )
    return t_count + t_inic(e_init, p, params)


def serial_sort_time(
    e_init: int,
    hierarchy: MemoryHierarchy,
    params: MachineParams = DEFAULT_PARAMS,
) -> float:
    """Single-node reference: full bucket sort + count sort
    ('over 5 seconds in the serial implementation' for the bucket sort,
    Section 4.2)."""
    n = receive_buckets(e_init, 1, params)
    return (
        bucket_sort_time(params, hierarchy, e_init, n)
        + count_sort_time(params, hierarchy, e_init, bucket_keys=max(1, e_init // n))
    )


@dataclass(frozen=True)
class SortModelPoint:
    """One P point of the Fig. 5(a) decomposition."""

    p: int
    partition_kib: float
    count_sort_time: float
    phase1_bucket_time: float
    phase2_bucket_time: float


def sort_component_series(
    e_init: int,
    procs: list[int],
    hierarchy: MemoryHierarchy,
    params: MachineParams = DEFAULT_PARAMS,
) -> list[SortModelPoint]:
    """The host-side component series of Fig. 5(a)."""
    out = []
    for p in procs:
        per_node = e_init // p
        n = receive_buckets(e_init, p, params)
        out.append(
            SortModelPoint(
                p=p,
                partition_kib=sort_partition_bytes(e_init, p, params) / 1024.0,
                count_sort_time=count_sort_time(
                    params, hierarchy, per_node, bucket_keys=max(1, per_node // n)
                ),
                phase1_bucket_time=bucket_sort_time(params, hierarchy, per_node, p),
                phase2_bucket_time=bucket_sort_time(params, hierarchy, per_node, n),
            )
        )
    return out
