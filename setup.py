"""Legacy setuptools shim + optional native-scheduler extension.

The metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works on environments whose setuptools predates
PEP-660 editable wheels (no ``wheel`` package available offline), and
to build the *optional* compiled scheduler backend::

    python setup.py build_ext --inplace    # drops repro/sim/_csched*.so next to sched.py

The extension is strictly optional: every build failure (no compiler,
no Python headers) degrades to a warning and the pure-python fallback
(``repro.sim.sched`` kind ``"native"`` then routes to the calendar
composite), so the wheel always builds and all tests pass either way.
"""

import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """A build_ext that treats every extension as best-effort."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # missing toolchain entirely
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # compiler present but the build failed
            self._skip(exc)

    @staticmethod
    def _skip(exc):
        sys.stderr.write(
            "WARNING: skipping optional native scheduler extension "
            f"({exc.__class__.__name__}: {exc}); "
            "repro will use the pure-python scheduler fallback\n"
        )


setup(
    ext_modules=[
        Extension(
            "repro.sim._csched",
            sources=["src/repro/sim/_csched.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
