"""Netperf-style microbenchmarks: the Section-2 protocol-processor
claims ("more features ... higher bandwidth, and lower latency than
current commodity network subsystems") quantified head to head.

Also a CLI for the exchange-phase admission microbench::

    python benchmarks/bench_net_microbench.py [--json] [--n 8]

sweeps all-to-all frame trains of 2^6 .. 2^14 frames through the
aggregate fabric with bulk flow-clock admission
(:mod:`repro.net.flowclock`) on and off, reporting DES event counts
and host wall seconds per mode.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from conftest import run_once

from repro.apps.netbench import inic_pingpong, inic_stream, tcp_pingpong, tcp_stream
from repro.inic import ACEII_PROTOTYPE


def test_latency_tcp_vs_inic(benchmark):
    def measure():
        tcp = tcp_pingpong(nbytes=64, repetitions=10)
        inic = inic_pingpong(nbytes=64, repetitions=10)
        return tcp, inic

    tcp, inic = run_once(benchmark, measure)
    print(f"\n64B one-way latency: TCP {tcp.latency * 1e6:.1f} us "
          f"vs INIC {inic.latency * 1e6:.1f} us "
          f"({tcp.latency / inic.latency:.1f}x)")
    assert inic.latency < tcp.latency


def test_bandwidth_tcp_vs_inic(benchmark):
    def measure():
        tcp = tcp_stream(nbytes=2 << 20, repetitions=2)
        inic = inic_stream(nbytes=2 << 20, repetitions=2)
        return tcp, inic

    tcp, inic = run_once(benchmark, measure)
    print(f"\nbulk bandwidth: TCP {tcp.bandwidth / 1e6:.1f} MB/s "
          f"vs INIC {inic.bandwidth / 1e6:.1f} MB/s")
    assert inic.bandwidth > tcp.bandwidth


def test_prototype_card_bandwidth(benchmark):
    """The ACEII's shared bus caps its protocol-mode bandwidth well
    below the ideal card's."""
    def measure():
        ideal = inic_stream(nbytes=2 << 20, repetitions=2)
        proto = inic_stream(nbytes=2 << 20, repetitions=2, card=ACEII_PROTOTYPE)
        return ideal, proto

    ideal, proto = run_once(benchmark, measure)
    print(f"\nINIC stream: ideal {ideal.bandwidth / 1e6:.1f} MB/s "
          f"vs prototype {proto.bandwidth / 1e6:.1f} MB/s")
    assert proto.bandwidth < ideal.bandwidth


def test_latency_size_sweep(benchmark):
    """Latency vs message size: the INIC advantage is biggest for the
    short messages TCP's mitigation/slow-start hurt most."""
    def measure():
        rows = []
        for nbytes in (64, 1024, 16 * 1024):
            tcp = tcp_pingpong(nbytes=nbytes, repetitions=5)
            inic = inic_pingpong(nbytes=nbytes, repetitions=5)
            rows.append((nbytes, tcp.latency, inic.latency))
        return rows

    rows = run_once(benchmark, measure)
    print()
    for nbytes, t_tcp, t_inic in rows:
        print(f"  {nbytes:>6} B: TCP {t_tcp * 1e6:8.1f} us | "
              f"INIC {t_inic * 1e6:8.1f} us | {t_tcp / t_inic:5.1f}x")
    ratios = [t_tcp / t_inic for _, t_tcp, t_inic in rows]
    assert ratios[0] > ratios[-1]  # small messages gain most


# -- exchange-phase admission microbench ------------------------------------
def exchange_once(n: int, train_len: int, bulk: bool) -> dict:
    """One all-to-all round: ``n`` overlapping senders each admit a
    ``train_len``-frame train (round-robin destinations, 1400 B
    payloads at wire pacing).  Returns DES events and host wall."""
    from repro.net import Frame, MacAddress
    from repro.net.fabric import build_aggregate_star
    from repro.sim import Simulator

    class Probe:
        def __init__(self, sim):
            self.sim = sim
            self.wire = None

        def attach_wire(self, wire):
            self.wire = wire

        def receive_frame(self, frame):
            pass

        def receive_train(self, frames, times):
            pass

    sim = Simulator()
    stations = [Probe(sim) for _ in range(n)]
    addrs = [MacAddress(i) for i in range(n)]
    fabric = build_aggregate_star(sim, list(zip(addrs, stations)))
    gap = 12e-6  # ~1400 B at gigabit: keeps every uplink chain busy
    for src in range(n):
        frames = [
            Frame(
                addrs[src],
                addrs[(src + 1 + i % (n - 1)) % n],
                payload_bytes=1400,
                headers=8,
            )
            for i in range(train_len)
        ]
        times = [i * gap for i in range(train_len)]
        if bulk:
            fabric.uplink(src).send_train(frames, times)
        else:
            for frame, t in zip(frames, times):
                sim.call_after(t, fabric._send, fabric.uplink(src), frame)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "events": sim.event_count,
        "wall_seconds": round(wall, 6),
        "trains_fast": fabric.trains_fast,
        "dropped": fabric.conservation_counters()["frames_dropped"],
    }


def exchange_sweep(n: int = 8, sizes=None) -> list:
    sizes = sizes or [2 ** k for k in range(6, 15)]
    rows = []
    for train_len in sizes:
        frame = exchange_once(n, train_len, bulk=False)
        bulk = exchange_once(n, train_len, bulk=True)
        rows.append(
            {
                "train_len": train_len,
                "frame": frame,
                "bulk": bulk,
                "event_reduction": round(
                    frame["events"] / max(1, bulk["events"]), 2
                ),
            }
        )
    return rows


def test_exchange_fastpath_event_reduction(benchmark):
    """Bulk flow-clock admission must cut exchange-phase DES events by
    at least 5x against frame-level sends (the ISSUE-10 floor)."""
    rows = run_once(benchmark, exchange_sweep, 8, [64, 256])
    print()
    for r in rows:
        print(
            f"  train={r['train_len']:>5}: frame {r['frame']['events']:>7} ev"
            f" | bulk {r['bulk']['events']:>6} ev"
            f" | {r['event_reduction']:.1f}x"
        )
    for r in rows:
        assert r["bulk"]["trains_fast"] == 8
        assert r["bulk"]["dropped"] == r["frame"]["dropped"]
        assert r["event_reduction"] >= 5.0


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="exchange-phase admission microbench (bulk vs frame)"
    )
    parser.add_argument("--json", action="store_true", help="emit JSON")
    parser.add_argument("--n", type=int, default=8, help="stations")
    args = parser.parse_args(argv)
    rows = exchange_sweep(args.n)
    if args.json:
        print(json.dumps({"n": args.n, "rows": rows}, indent=2))
        return 0
    print(f"exchange admission microbench: n={args.n} senders, all-to-all")
    print(f"{'train':>7} | {'frame ev':>9} {'wall':>8} | "
          f"{'bulk ev':>8} {'wall':>8} | {'reduction':>9}")
    for r in rows:
        print(
            f"{r['train_len']:>7} | {r['frame']['events']:>9} "
            f"{r['frame']['wall_seconds']:>7.3f}s | {r['bulk']['events']:>8} "
            f"{r['bulk']['wall_seconds']:>7.3f}s | {r['event_reduction']:>8.1f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
