"""Netperf-style microbenchmarks: the Section-2 protocol-processor
claims ("more features ... higher bandwidth, and lower latency than
current commodity network subsystems") quantified head to head.
"""

from conftest import run_once

from repro.apps.netbench import inic_pingpong, inic_stream, tcp_pingpong, tcp_stream
from repro.inic import ACEII_PROTOTYPE


def test_latency_tcp_vs_inic(benchmark):
    def measure():
        tcp = tcp_pingpong(nbytes=64, repetitions=10)
        inic = inic_pingpong(nbytes=64, repetitions=10)
        return tcp, inic

    tcp, inic = run_once(benchmark, measure)
    print(f"\n64B one-way latency: TCP {tcp.latency * 1e6:.1f} us "
          f"vs INIC {inic.latency * 1e6:.1f} us "
          f"({tcp.latency / inic.latency:.1f}x)")
    assert inic.latency < tcp.latency


def test_bandwidth_tcp_vs_inic(benchmark):
    def measure():
        tcp = tcp_stream(nbytes=2 << 20, repetitions=2)
        inic = inic_stream(nbytes=2 << 20, repetitions=2)
        return tcp, inic

    tcp, inic = run_once(benchmark, measure)
    print(f"\nbulk bandwidth: TCP {tcp.bandwidth / 1e6:.1f} MB/s "
          f"vs INIC {inic.bandwidth / 1e6:.1f} MB/s")
    assert inic.bandwidth > tcp.bandwidth


def test_prototype_card_bandwidth(benchmark):
    """The ACEII's shared bus caps its protocol-mode bandwidth well
    below the ideal card's."""
    def measure():
        ideal = inic_stream(nbytes=2 << 20, repetitions=2)
        proto = inic_stream(nbytes=2 << 20, repetitions=2, card=ACEII_PROTOTYPE)
        return ideal, proto

    ideal, proto = run_once(benchmark, measure)
    print(f"\nINIC stream: ideal {ideal.bandwidth / 1e6:.1f} MB/s "
          f"vs prototype {proto.bandwidth / 1e6:.1f} MB/s")
    assert proto.bandwidth < ideal.bandwidth


def test_latency_size_sweep(benchmark):
    """Latency vs message size: the INIC advantage is biggest for the
    short messages TCP's mitigation/slow-start hurt most."""
    def measure():
        rows = []
        for nbytes in (64, 1024, 16 * 1024):
            tcp = tcp_pingpong(nbytes=nbytes, repetitions=5)
            inic = inic_pingpong(nbytes=nbytes, repetitions=5)
            rows.append((nbytes, tcp.latency, inic.latency))
        return rows

    rows = run_once(benchmark, measure)
    print()
    for nbytes, t_tcp, t_inic in rows:
        print(f"  {nbytes:>6} B: TCP {t_tcp * 1e6:8.1f} us | "
              f"INIC {t_inic * 1e6:8.1f} us | {t_tcp / t_inic:5.1f}x")
    ratios = [t_tcp / t_inic for _, t_tcp, t_inic in rows]
    assert ratios[0] > ratios[-1]  # small messages gain most
