"""Figure 8(a): simulated 2D-FFT speedups — FE vs GigE vs prototype INIC.

Full discrete-event simulation runs (the paper's measured section).
Paper shape: Fast Ethernet needs many nodes to merely beat one
processor; Gigabit Ethernet does better but "would hardly be considered
scalable"; the prototype INIC sits clearly above both on the same
Gigabit hardware.
"""

from conftest import run_once

from repro.bench.figures import fig8a
from repro.bench.harness import Scale, render_table


def test_fig8a_prototype_fft(benchmark, bench_scale: Scale, sweep_engine):
    exp = run_once(benchmark, fig8a, bench_scale, engine=sweep_engine)
    print()
    print(render_table(exp))
    rows = bench_scale.fft_sizes[0]

    proto = exp.series_named(f"proto INIC {rows}")
    fe = exp.series_named(f"Fast Ethernet {rows}")
    gige = exp.series_named(f"GigE {rows}")

    # Fast Ethernet is crippled: below break-even on few nodes, and far
    # from linear at scale.
    assert fe.at(2) < 1.0
    assert fe.at(16) < 0.25 * 16

    # GigE better than FE but not scalable (paper: ~2 at 8, ~4 peak).
    assert gige.at(8) > fe.at(8)
    assert gige.at(16) < 0.6 * 16

    # The prototype INIC beats GigE on the same network hardware where
    # scalability matters (the paper's curves are close below P=8).
    assert proto.at(4) > 0.8 * gige.at(4)
    for p in (8, 16):
        assert proto.at(p) > gige.at(p), f"prototype not ahead at P={p}"
    assert proto.at(16) > 1.3 * gige.at(16)
