"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark runs its experiment once (``pedantic`` with one round):
these are *reproduction* harnesses whose output is a figure's worth of
series, not microbenchmarks hunting nanoseconds.  The rendered table is
printed so ``pytest benchmarks/ --benchmark-only -s`` shows the curves.
"""

import pytest

from repro.bench.harness import Scale
from repro.bench.sweep import SweepEngine


@pytest.fixture(scope="session")
def bench_scale() -> Scale:
    return Scale.bench()


@pytest.fixture(scope="session")
def paper_scale() -> Scale:
    return Scale.paper()


@pytest.fixture(scope="session")
def sweep_engine() -> SweepEngine:
    """Serial, uncached engine: pytest-benchmark must time real runs,
    never cache recalls."""
    return SweepEngine(jobs=1, cache_dir=None)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
