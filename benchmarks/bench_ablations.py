"""Ablations of the design choices the paper calls out.

* **1024-byte INIC packets** (Section 4.2: "A packet size of 1024 is
  reasonable ... there is no particular incentive to maximize the
  packet size") — sweep packet size and confirm its flatness.
* **64 KiB DMA threshold** (Eq. 15's efficiency rationale) — sweep the
  receive->host granule.
* **Shared vs dedicated card bus** (the prototype's Section-5 weakness)
  — same design, both card geometries.
* **Pairwise vs concurrent all-to-all** (the baseline MPI schedule).
* **Reconfiguration cost** (mode switching between applications).
"""

import numpy as np
import pytest

from conftest import run_once

from repro.api import ACEII_PROTOTYPE, CardSpec, Experiment, IDEAL_INIC
from repro.apps.fft import baseline_fft2d, inic_fft2d
from repro.cluster import ParallelApp, alltoall, alltoall_concurrent
from repro.core import fft_transpose_design, integer_sort_design
from repro.protocols import INICProtoConfig

P = 4
ROWS = 128


def _matrix(seed=8):
    g = np.random.default_rng(seed)
    return g.standard_normal((ROWS, ROWS)) + 1j * g.standard_normal((ROWS, ROWS))


def _inic_time(card: CardSpec) -> float:
    session = Experiment().nodes(P).card(card).build()
    _, res = inic_fft2d(session.cluster, session.manager, _matrix())
    return res.makespan


@pytest.mark.parametrize("packet", [256, 1024, 4096])
def test_packet_size_flatness(benchmark, packet):
    """Per Section 4.2, the INIC gains little from bigger packets."""
    import dataclasses

    card = dataclasses.replace(
        IDEAL_INIC, proto=INICProtoConfig(packet_size=packet)
    )
    t = run_once(benchmark, _inic_time, card)
    base = _inic_time(IDEAL_INIC)
    print(f"\npacket={packet}: {t * 1000:.2f} ms (1024B: {base * 1000:.2f} ms)")
    # Within 25% of the 1024-byte default across a 16x size range.
    assert abs(t - base) / base < 0.25


@pytest.mark.parametrize("threshold_kib", [16, 64, 256])
def test_dma_threshold_sweep(benchmark, threshold_kib):
    """The 64 KiB receive granule balances DMA efficiency (small
    thresholds transfer inefficiently) against drain latency."""
    import dataclasses

    card = dataclasses.replace(IDEAL_INIC, dma_threshold=threshold_kib * 1024)
    t = run_once(benchmark, _inic_time, card)
    print(f"\nthreshold={threshold_kib}KiB: {t * 1000:.2f} ms")
    assert t > 0


def test_shared_bus_penalty(benchmark):
    """Dedicated paths (ideal) vs the ACEII's single shared bus."""
    t_ideal = _inic_time(IDEAL_INIC)
    t_proto = run_once(benchmark, _inic_time, ACEII_PROTOTYPE)
    print(f"\nideal {t_ideal * 1000:.2f} ms vs shared-bus {t_proto * 1000:.2f} ms")
    assert t_proto > t_ideal


def test_pairwise_vs_concurrent_alltoall(benchmark):
    """The FFTW pairwise schedule serializes latency; a fully concurrent
    all-to-all of the same volume is faster at this scale."""
    times = {}
    for name, coll in (("pairwise", alltoall), ("concurrent", alltoall_concurrent)):
        cluster = Experiment().nodes(8).build().cluster
        app = ParallelApp(cluster)
        block = 32 * 1024

        def program(ctx, _coll=coll):
            blocks = [(block, None) for _ in range(8)]
            yield from _coll(ctx, blocks)
            return None

        times[name] = app.run(program).makespan

    def measure():
        return times

    run_once(benchmark, measure)
    print(f"\npairwise {times['pairwise'] * 1000:.2f} ms vs "
          f"concurrent {times['concurrent'] * 1000:.2f} ms")
    assert times["concurrent"] < times["pairwise"]


def test_reconfiguration_cost_between_apps(benchmark):
    """Switching FFT -> sort designs costs one bitstream load per card."""
    session = Experiment().nodes(2).card().build()
    cluster, manager = session.cluster, session.manager

    def reconfigure():
        t_fft = manager.configure_all(fft_transpose_design)
        t_sort = manager.configure_all(lambda: integer_sort_design(cluster.spec.inic))
        return t_fft, t_sort

    t_fft, t_sort = run_once(benchmark, reconfigure)
    print(f"\nconfig times: fft {t_fft * 1000:.0f} ms, sort {t_sort * 1000:.0f} ms")
    assert manager.reconfigurations() == 4
    assert t_fft > 0 and t_sort > 0


def test_interrupt_mitigation_off_hurts_baseline(benchmark):
    """Disable coalescing entirely: per-frame interrupts tax the host."""
    from repro.cluster import NodeHardware
    from repro.hw import CoalescePolicy

    times = {}
    for label, policy in (
        ("mitigated", None),  # builder default (70us/10 frames)
        ("per-frame", CoalescePolicy()),
    ):
        node = NodeHardware() if policy is None else NodeHardware(coalesce=policy)
        cluster = Cluster.build(ClusterSpec(n_nodes=P, node=node))
        _, res = baseline_fft2d(cluster, _matrix())
        times[label] = (
            res.makespan,
            sum(n.cpu.interrupt_time for n in cluster.nodes),
        )

    run_once(benchmark, lambda: times)
    print(f"\nmitigated: {times['mitigated'][1]:.2e}s irq cpu; "
          f"per-frame: {times['per-frame'][1]:.2e}s irq cpu")
    assert times["per-frame"][1] > times["mitigated"][1]
