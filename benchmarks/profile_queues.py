"""Scheduler profiling harness: where does event-queue time go?

A standalone script (not a pytest benchmark — profiling wants a steady
process, not a fixture sandwich) with three modes::

    python benchmarks/profile_queues.py
        Comparison table: every scheduler kind under the hold,
        cancel-churn, and sawtooth mixes, with speedups vs the
        reference heap.  This is ``python -m repro.sim --bench`` data
        reshaped around the "which backend should I use?" question.

    python benchmarks/profile_queues.py --profile native hold
        cProfile one (kind, mix) cell of the microbenchmark, sorted by
        cumulative time.  For pure-python kinds this shows the sift and
        bucket costs; for the compiled native backend the scheduler
        vanishes from the profile entirely — which is the point.

    python benchmarks/profile_queues.py --suite native
        cProfile the full ci perf suite (real engine, real models)
        under the given scheduler kind.  This is the view that drove
        the hot-path flattening work: once the queue is native, the
        remaining time is the run loop and the protocol models.

    python benchmarks/profile_queues.py --fabric fattree --p 64
        cProfile one scale-suite INIC exchange point on the given
        fabric kind.  Pass --no-fastpath to profile the frame-level
        admission path instead of the bulk flow clock
        (repro.net.flowclock) — diffing the two profiles shows what
        the fast path removed (per-chunk egress events, per-frame
        admission) and what remains (host compute, bulk rx).

Run from the repository root; ``src/`` is bootstrapped onto ``sys.path``
so no install step is needed.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
from pathlib import Path
from random import Random

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.__main__ import _MIX_FNS, _MIXES, bench_report  # noqa: E402
from repro.sim.sched import SCHEDULER_KINDS, make_scheduler  # noqa: E402


def compare(n: int, seed: int) -> int:
    """Print the all-kinds comparison table with speedups vs heap."""
    report = bench_report(n, seed, SCHEDULER_KINDS)
    heap = report["schedulers"]["heap"]["ops_per_sec"]
    header = f"{'kind':>10} {'backend':>18} | " + " | ".join(
        f"{m:>22}" for m in _MIXES
    )
    print(f"scheduler comparison: n={n} seed={seed} (speedup vs heap)")
    print(header)
    print("-" * len(header))
    for kind, entry in report["schedulers"].items():
        backend = entry["backend"] + ("/compiled" if entry["compiled"] else "")
        cells = []
        for mix in _MIXES:
            ops = entry["ops_per_sec"][mix]
            cells.append(f"{ops / 1e6:>8.2f}Mo/s ({ops / heap[mix]:>5.2f}x)")
        print(f"{kind:>10} {backend:>18} | " + " | ".join(cells))
    return 0


def profile_cell(kind: str, mix: str, n: int, seed: int, top: int) -> int:
    """cProfile one scheduler microbenchmark cell."""
    sched = make_scheduler(kind)
    stats = sched.stats()
    backend = stats["kind"] + ("/compiled" if stats.get("compiled") else "")
    print(f"profiling {kind} ({backend}) under mix {mix!r}, n={n}")
    fn = _MIX_FNS[mix]
    rng = Random(seed)
    prof = cProfile.Profile()
    prof.enable()
    fn(sched, n, rng)
    prof.disable()
    pstats.Stats(prof).sort_stats("cumulative").print_stats(top)
    return 0


def profile_suite(kind: str, scale: str, top: int) -> int:
    """cProfile the ci perf suite end to end under scheduler ``kind``."""
    from repro.bench.harness import Scale
    from repro.bench.sweep import _RUNNERS, perf_points

    saved = os.environ.get("REPRO_SIM_SCHEDULER")
    os.environ["REPRO_SIM_SCHEDULER"] = kind
    try:
        specs = list(perf_points(Scale.by_name(scale)))
        print(f"profiling perf suite ({len(specs)} scenarios) under {kind!r}")
        prof = cProfile.Profile()
        prof.enable()
        for spec in specs:
            _RUNNERS[spec.kind](spec.params)
        prof.disable()
    finally:
        if saved is None:
            os.environ.pop("REPRO_SIM_SCHEDULER", None)
        else:
            os.environ["REPRO_SIM_SCHEDULER"] = saved
    pstats.Stats(prof).sort_stats("cumulative").print_stats(top)
    return 0


def profile_fabric(
    fabric: str, p: int, app: str, fastpath: bool, top: int
) -> int:
    """cProfile one scale-suite INIC exchange point on ``fabric``."""
    from repro.bench.harness import Scale
    from repro.bench.sweep import _RUNNERS, scale_points

    infix = "" if fabric == "aggregate" else f"{fabric}-"
    name = f"scale-{app}-inic-{infix}p{p}"
    specs = {
        s.name: s
        for s in scale_points(Scale.by_name("large"), fastpath=fastpath)
    }
    spec = specs.get(name)
    if spec is None:
        candidates = ", ".join(k for k in sorted(specs) if "-inic-" in k)
        print(f"no scale point {name!r}; have: {candidates}")
        return 2
    mode = "bulk flow-clock" if fastpath else "frame-level"
    print(f"profiling {name} ({mode} admission)")
    prof = cProfile.Profile()
    prof.enable()
    _RUNNERS[spec.kind](spec.params)
    prof.disable()
    pstats.Stats(prof).sort_stats("cumulative").print_stats(top)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--profile", nargs=2, metavar=("KIND", "MIX"),
        help="cProfile one (scheduler, mix) microbenchmark cell",
    )
    mode.add_argument(
        "--suite", metavar="KIND", choices=list(SCHEDULER_KINDS),
        help="cProfile the ci perf suite under a scheduler kind",
    )
    mode.add_argument(
        "--fabric", choices=["aggregate", "fattree", "torus"],
        help="cProfile one scale-suite INIC exchange point on this fabric",
    )
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=0x5EED)
    parser.add_argument("--scale", default="ci", choices=["ci", "bench", "paper"])
    parser.add_argument(
        "--p", type=int, default=64,
        help="(--fabric) node count of the profiled scale point",
    )
    parser.add_argument(
        "--app", default="sort", choices=["sort", "fft"],
        help="(--fabric) which exchange workload to profile",
    )
    parser.add_argument(
        "--no-fastpath", action="store_true",
        help="(--fabric) profile frame-level admission instead of the "
        "bulk flow clock",
    )
    parser.add_argument(
        "--top", type=int, default=15, help="profile rows to print"
    )
    args = parser.parse_args(argv)
    if args.profile:
        kind, mix = args.profile
        if kind not in SCHEDULER_KINDS:
            parser.error(f"unknown scheduler kind {kind!r}")
        if mix not in _MIXES:
            parser.error(f"unknown mix {mix!r} (choose from {', '.join(_MIXES)})")
        return profile_cell(kind, mix, args.n, args.seed, args.top)
    if args.suite:
        return profile_suite(args.suite, args.scale, args.top)
    if args.fabric:
        return profile_fabric(
            args.fabric, args.p, args.app, not args.no_fastpath, args.top
        )
    return compare(args.n, args.seed)


if __name__ == "__main__":
    sys.exit(main())
