"""Figure 4(b): decomposition of transpose time vs partition size.

Paper shape: "the line representing partition size has a steeper slope
than the one representing communication time" — GigE comm time fails to
shrink with the partition; the compute curve scales ~1/P with cache-fit
kinks; the INIC transpose shrinks with the partition and undercuts the
NIC comm time at scale.
"""

from conftest import run_once

from repro.bench.figures import fig4b
from repro.bench.harness import Scale, render_table


def _log_slope(series, x0, x1):
    import math

    return math.log(series.at(x1) / series.at(x0)) / math.log(x1 / x0)


def test_fig4b_decomposition(benchmark, sweep_engine):
    scale = Scale.paper()
    exp = run_once(benchmark, fig4b, scale, engine=sweep_engine)
    print()
    print(render_table(exp))

    comm = exp.series_named("NIC comm time (ms)")
    compute = exp.series_named("NIC compute time (ms)")
    inic = exp.series_named("INIC transpose (ms)")
    part = exp.series_named("partition (KiB)")

    # Partition size halves with every doubling of P: slope exactly -1.
    assert abs(_log_slope(part, 2, 16) + 1.0) < 1e-9
    # GigE comm time falls much more slowly than the partition.
    assert _log_slope(comm, 2, 16) > -0.5
    # INIC transpose tracks the partition much more closely.
    assert _log_slope(inic, 2, 16) < -0.8
    # At scale the INIC transpose is well under the NIC's comm time.
    assert inic.at(16) < 0.7 * comm.at(16)
    # Compute time scales down ~1/P.
    assert compute.at(2) / compute.at(16) > 8.0
