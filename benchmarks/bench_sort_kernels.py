"""Section 3.2's kernel claims, measured on the functional kernels.

* "We found that Count Sort was as much as 2.5x faster than quicksort."
* "it is important to first bucket sort the data such that the buckets
  fit in the processor cache" — with >= 128 buckets at 2^21 keys.

These are wall-clock benchmarks of our from-scratch kernels (the only
deliberately wall-clock measurements in the suite; everything else is
simulated time).  The quicksort here manages segments in Python, so the
ratio lands far *above* 2.5x — the direction of the claim is what the
assertion checks.
"""

import numpy as np
import pytest

from repro.apps.sort import (
    cache_bucket_count,
    count_sort,
    quicksort,
    split_by_bits,
    uniform_keys,
)

N_KEYS = 1 << 17
rng = np.random.default_rng(11)
KEYS = uniform_keys(N_KEYS, rng)


def test_count_sort_rate(benchmark):
    out = benchmark(count_sort, KEYS)
    assert np.array_equal(out, np.sort(KEYS))


def test_quicksort_rate(benchmark):
    out = benchmark.pedantic(quicksort, args=(KEYS,), rounds=1, iterations=1)
    assert np.array_equal(out, np.sort(KEYS))


def test_count_sort_beats_quicksort():
    """The paper's 2.5x claim, as a direction + magnitude floor."""
    import time

    t0 = time.perf_counter()
    count_sort(KEYS)
    t_count = time.perf_counter() - t0
    t0 = time.perf_counter()
    quicksort(KEYS)
    t_quick = time.perf_counter() - t0
    assert t_quick / t_count > 2.5


def test_bucket_split_rate(benchmark):
    buckets = benchmark(split_by_bits, KEYS, 0, 128)
    assert sum(b.shape[0] for b in buckets) == N_KEYS


def test_cache_bucket_rule_is_128_at_2_21():
    """Section 3.2.1: 'On a problem size of 2^21 keys or more, a minimum
    of 128 buckets are needed'."""
    assert cache_bucket_count(2**21, 24 * 1024) >= 128
    n = cache_bucket_count(2**21, 24 * 1024)
    # And each bucket then fits comfortably in a 256 KiB L2.
    assert (2**21 // n) * 4 <= 256 * 1024


@pytest.mark.parametrize("n_buckets", [16, 128])
def test_bucketed_count_sort_end_to_end(benchmark, n_buckets):
    """Bucket pre-pass + per-bucket count sort == sorted (the paper's
    full host pipeline), at either the prototype or ideal bucket count."""

    def pipeline():
        buckets = split_by_bits(KEYS, 0, n_buckets)
        return np.concatenate([count_sort(b) for b in buckets])

    out = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    assert np.array_equal(out, np.sort(KEYS))
