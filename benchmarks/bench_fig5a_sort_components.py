"""Figure 5(a): integer-sort component times vs processors.

Paper shape (at E ~ 48 * 2^20 uniform keys): serial count sort ~2.3 s,
serial bucket sort "over 5 seconds"; both host phases fall as 1/P while
communication time flattens (per-message overheads), and the partition
axis tops out near 200,000 KB.
"""

from conftest import run_once

from repro.bench.figures import fig5a
from repro.bench.harness import Scale, render_table


def test_fig5a_components(benchmark, sweep_engine):
    scale = Scale.paper()
    exp = run_once(benchmark, fig5a, scale, engine=sweep_engine)
    print()
    print(render_table(exp))

    count = exp.series_named("count sort (ms)")
    ph1 = exp.series_named("phase1 bucket (ms)")
    ph2 = exp.series_named("phase2 bucket (ms)")
    comm = exp.series_named("communication (ms)")
    part = exp.series_named("partition (KiB)")

    # Serial anchors from the paper's text.
    assert 1800 < count.at(1) < 2800  # ~2.3 s count sort
    assert ph1.at(1) + ph2.at(1) > 5000  # bucket sorting "over 5 seconds"
    assert 150_000 < part.at(1) < 250_000  # ~200,000 KB partition axis

    # Host phases scale ~1/P.
    assert count.at(1) / count.at(16) > 12
    assert ph1.at(1) / ph1.at(16) > 12

    # Communication refuses to scale the same way.
    assert comm.at(2) / comm.at(16) < 8
