"""Figure 4(a): analytic FFTW speedups — ideal INIC vs Gigabit Ethernet.

Paper shape: the INIC curves are near-linear out to 16 processors with
"no substantial indication of when that linear speedup will end"; the
GigE curves sit below them and flatten, with the smaller (256x256)
matrix scaling worse than the larger one at high P.
"""

from conftest import run_once

from repro.bench.figures import fig4a
from repro.bench.harness import Scale, render_table
from repro.bench.report import shape_summary


def test_fig4a_speedups(benchmark, sweep_engine):
    scale = Scale.paper()  # the model is closed-form: paper scale is free
    exp = run_once(benchmark, fig4a, scale, engine=sweep_engine)
    print()
    print(render_table(exp))

    inic256 = exp.series_named("INIC 256x256")
    inic512 = exp.series_named("INIC 512x512")
    gige256 = exp.series_named("GigE 256x256")
    gige512 = exp.series_named("GigE 512x512")

    # INIC near-linear at the far end (within 2x of ideal).
    assert inic256.at(16) > 8.0
    assert inic512.at(16) > 8.0
    # INIC keeps rising the whole way.
    assert shape_summary(inic512)["rising_fraction"] == 1.0

    # GigE clearly below INIC at scale.
    assert gige256.at(16) < 0.5 * inic256.at(16)
    assert gige512.at(16) < 0.75 * inic512.at(16)

    # The small matrix scales worse on GigE (per-message overheads bite).
    assert gige256.at(16) < gige512.at(16)

    # GigE flattens: its last doubling of P gains far less than 2x.
    assert gige256.at(16) / gige256.at(8) < 1.5
