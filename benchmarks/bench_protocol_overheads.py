"""Section 4.1's protocol arguments, measured in the DES.

* "modern systems are incapable of handling an interrupt per packet at
  the full data rate of Gigabit Ethernet" -> the baseline NIC raises
  one cause per frame; mitigation trades them against latency.
* "the virtual elimination of interrupts from the communication path"
  -> the INIC raises ONE completion interrupt per operation.
* "acknowledgement packets and per packet protocol overhead need not
  consume system bandwidth" -> byte accounting on the host PCI bus.
"""

import numpy as np
import pytest

from conftest import run_once

from repro.api import ACEII_PROTOTYPE, Experiment
from repro.apps.fft import baseline_fft2d, inic_fft2d

ROWS = 128
P = 4


def _matrix():
    g = np.random.default_rng(5)
    return g.standard_normal((ROWS, ROWS)) + 1j * g.standard_normal((ROWS, ROWS))


def _run_baseline():
    cluster = Experiment().nodes(P).build().cluster
    _, res = baseline_fft2d(cluster, _matrix())
    return cluster, res


def _run_inic():
    session = Experiment().nodes(P).card(ACEII_PROTOTYPE).build()
    _, res = inic_fft2d(session.cluster, session.manager, _matrix())
    return session.cluster, session.manager, res


def test_baseline_interrupt_load(benchmark):
    cluster, res = run_once(benchmark, _run_baseline)
    causes = sum(n.nic.irq.causes_raised for n in cluster.nodes)
    frames = sum(n.nic.stats.rx_frames for n in cluster.nodes)
    print(f"\nbaseline: {causes} interrupt causes for {frames} frames")
    # One cause per received frame, by construction of a dumb NIC.
    assert causes == frames
    assert causes > 100


def test_inic_interrupt_elimination(benchmark):
    cluster, manager, res = run_once(benchmark, _run_inic)
    completions = manager.total_completion_interrupts()
    frames = sum(n.require_inic().stats.frames_received for n in cluster.nodes)
    print(f"\nINIC: {completions} completion interrupts for {frames} frames")
    # One interrupt per transpose per node — two transposes — while the
    # wire carried tens of packets per completion.
    assert completions == 2 * P
    assert frames >= 40 * completions


def test_host_cpu_interrupt_time_ratio():
    """Interrupt theft on the host: baseline pays per frame, INIC ~zero."""
    base_cluster, _ = _run_baseline()
    inic_cluster, _, _ = _run_inic()
    base_irq = sum(n.cpu.interrupt_time for n in base_cluster.nodes)
    inic_irq = sum(n.cpu.interrupt_time for n in inic_cluster.nodes)
    print(f"\nhost interrupt time: baseline {base_irq:.2e}s vs INIC {inic_irq:.2e}s")
    assert base_irq > 10 * inic_irq


def test_ack_and_header_bandwidth_tax():
    """TCP moves more wire bytes than payload (headers + ACKs); the
    INIC protocol's overhead is materially smaller."""
    base_cluster, _ = _run_baseline()
    payload = ROWS * ROWS * 16 / P * (P - 1)  # remote bytes per transpose
    wire = sum(n.nic.stats.tx_bytes for n in base_cluster.nodes) / 2  # two transposes
    tcp_overhead = wire / ((P) * payload)

    inic_cluster, _, _ = _run_inic()
    inic_wire = (
        sum(n.require_inic().stats.bytes_egressed for n in inic_cluster.nodes) / 2
    )
    inic_overhead = inic_wire / (P * payload)
    print(f"\nwire/payload: tcp {tcp_overhead:.3f} vs inic {inic_overhead:.3f}")
    assert tcp_overhead > inic_overhead


@pytest.mark.parametrize("delay_us", [0, 70, 300])
def test_coalescing_latency_tradeoff(benchmark, delay_us):
    """Mitigation reduces interrupts but delays short messages — the
    interaction Section 4.1 blames for TCP's short-message pain."""
    from repro.cluster import NodeHardware
    from repro.hw import CoalescePolicy

    hw = NodeHardware(
        coalesce=CoalescePolicy(delay=delay_us * 1e-6, max_frames=10)
        if delay_us
        else CoalescePolicy()
    )
    cluster = Cluster.build(ClusterSpec(n_nodes=2, node=hw))
    from repro.cluster import ParallelApp

    app = ParallelApp(cluster)

    def program(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, 8 * 1024, tag=1)
            yield ctx.recv(src=1, tag=2)
        else:
            yield ctx.recv(src=0, tag=1)
            yield ctx.send(0, 8 * 1024, tag=2)
        return None

    def go():
        return app.run(program).makespan

    makespan = benchmark.pedantic(go, rounds=1, iterations=1)
    causes = cluster.nodes[0].nic.irq.causes_raised
    delivered = cluster.nodes[0].nic.irq.interrupts_delivered
    print(f"\ndelay={delay_us}us: rtt={makespan * 1e6:.0f}us, "
          f"{delivered} irqs for {causes} causes")
    assert makespan > 0
