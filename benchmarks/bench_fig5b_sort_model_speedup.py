"""Figure 5(b): analytic integer-sort speedups — ideal INIC vs GigE.

Paper shape: "The superlinear speedups achieved by the INIC
implementation is attributable to the elimination of the time for
bucket sorting the data (over 5 seconds in the serial implementation)";
the GigE curve is distinctly sublinear.
"""

from conftest import run_once

from repro.bench.figures import fig5b
from repro.bench.harness import Scale, render_table


def test_fig5b_speedups(benchmark, sweep_engine):
    scale = Scale.paper()
    exp = run_once(benchmark, fig5b, scale, engine=sweep_engine)
    print()
    print(render_table(exp))

    inic = exp.series_named("INIC")
    gige = exp.series_named("GigE")

    # INIC superlinear: speedup beats the processor count.
    for p in (2, 4, 8, 16):
        assert inic.at(p) > p, f"INIC not superlinear at P={p}"

    # GigE sublinear everywhere.
    for p in (4, 8, 16):
        assert gige.at(p) < p

    # And the INIC wins big at scale.
    assert inic.at(16) > 2 * gige.at(16)
