"""Figure 8(b): simulated integer-sort speedups — prototype INIC vs GigE.

Paper shape: the prototype INIC beats Gigabit Ethernet despite "the bus
bandwidth on the card and the need to perform a second stage bucket
sort on the receiving host"; the GigE curve is sublinear.
"""

from conftest import run_once

from repro.bench.figures import fig8b
from repro.bench.harness import Scale, render_table


def test_fig8b_prototype_sort(benchmark, bench_scale: Scale, sweep_engine):
    exp = run_once(benchmark, fig8b, bench_scale, engine=sweep_engine)
    print()
    print(render_table(exp))

    proto = exp.series_named("proto INIC")
    gige = exp.series_named("GigE")

    # Prototype INIC above GigE at every measured P.
    for p in (2, 4, 8, 16):
        assert proto.at(p) > gige.at(p), f"prototype not ahead at P={p}"

    # GigE sublinear at scale; prototype at least near-linear (the card
    # still eliminates the host bucket phases).
    assert gige.at(16) < 16
    assert proto.at(16) > 0.8 * 16
